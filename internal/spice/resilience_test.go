package spice

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mtcmos/internal/circuit"
	"mtcmos/internal/circuits"
	"mtcmos/internal/simerr"
)

// resilienceDeck is a switching inverter: the only free node is "out",
// so diagnostics are deterministic.
const resilienceDeck = "inv\n" +
	"Vdd vdd 0 DC 1.2\n" +
	"Vin in 0 PWL(0 0 1n 0 1.05n 1.2)\n" +
	"Mn out in 0 0 nmos W=1.4u L=0.7u\n" +
	"Mp out in vdd vdd pmos W=2.8u L=0.7u\n" +
	"Cl out 0 50f\n"

func TestMaxStepsBudget(t *testing.T) {
	f := flatten(t, resilienceDeck)
	res, err := Simulate(f, tech07(), Options{TStop: 4e-9, MaxSteps: 5})
	if !errors.Is(err, simerr.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must be returned")
	}
	if res.Steps != 5 {
		t.Errorf("budget must stop at 5 accepted steps, got %d", res.Steps)
	}
	if tr := res.Trace("out"); tr == nil || tr.Len() < 2 {
		t.Error("partial result must carry the accepted waveform")
	}
}

func TestMaxEvalsBudget(t *testing.T) {
	f := flatten(t, resilienceDeck)
	res, err := Simulate(f, tech07(), Options{TStop: 4e-9, MaxEvals: 50})
	if !errors.Is(err, simerr.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res == nil || res.Evals < 50 {
		t.Fatalf("partial result must report the spent evaluations, got %+v", res)
	}
}

func TestMaxWallBudget(t *testing.T) {
	f := flatten(t, resilienceDeck)
	res, err := Simulate(f, tech07(), Options{TStop: 4e-9, MaxWall: time.Nanosecond})
	if !errors.Is(err, simerr.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must be returned")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := flatten(t, resilienceDeck)
	res, err := Simulate(f, tech07(), Options{TStop: 4e-9, Ctx: ctx})
	if !errors.Is(err, simerr.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must be returned")
	}
	var se *simerr.Error
	if !errors.As(err, &se) {
		t.Fatalf("error must be a *simerr.Error, got %T", err)
	}
}

func TestContextBudgetCause(t *testing.T) {
	// A deadline whose cause is a budget error classifies as ErrBudget,
	// not ErrCancelled: this is how the CLI's -timeout flag is kept
	// distinct from Ctrl-C.
	ctx, cancel := context.WithTimeoutCause(context.Background(), 0,
		simerr.New(simerr.ErrBudget, "cli", "-timeout elapsed"))
	defer cancel()
	<-ctx.Done()
	f := flatten(t, resilienceDeck)
	res, err := Simulate(f, tech07(), Options{TStop: 4e-9, Ctx: ctx})
	if !errors.Is(err, simerr.ErrBudget) {
		t.Fatalf("want ErrBudget from the timeout cause, got %v", err)
	}
	if errors.Is(err, simerr.ErrCancelled) {
		t.Fatal("a budgeted timeout must not classify as cancellation")
	}
	if res == nil {
		t.Fatal("partial result must be returned")
	}
}

// TestPathologicalDecks drives the classic ill-posed deck shapes into
// each typed runtime failure, asserting the error is classified, names
// a node where one is implicated, and always arrives with a non-nil
// partial result.
func TestPathologicalDecks(t *testing.T) {
	// Per-sweep alternating jitter: defeats convergence without
	// breaking the Newton derivative (see internal/faultinject.Stuck).
	stuck := func(from float64) Intercept {
		return func(info EvalInfo, ids float64) float64 {
			// Bias a single device: applied to every device on the
			// node, the jitter would cancel in the KCL sum.
			if info.T < from || info.Device != "mn" {
				return ids
			}
			if info.Sweep%2 == 0 {
				return ids + 1e-3
			}
			return ids - 1e-3
		}
	}
	nanAfter := func(from float64) Intercept {
		return func(info EvalInfo, ids float64) float64 {
			if info.T >= from {
				return math.NaN()
			}
			return ids
		}
	}
	cases := []struct {
		name     string
		deck     string
		opts     Options
		kind     error
		wantNode bool
	}{
		{
			// The gate node fg floats: nothing defines its voltage but
			// the Cmin floor, so the channel current of the devices it
			// drives is garbage — modelled here as a NaN evaluation
			// once the transient is underway. The numerical guard must
			// fail fast, naming the poisoned node.
			name: "floating gate driving a device",
			deck: "floatgate\nVdd vdd 0 DC 1.2\n" +
				"Mn out fg 0 0 nmos W=1.4u L=0.7u\n" +
				"Mp out fg vdd vdd pmos W=2.8u L=0.7u\n" +
				"Cl out 0 20f\n",
			opts:     Options{TStop: 2e-9, Intercept: nanAfter(1e-9)},
			kind:     simerr.ErrNumerical,
			wantNode: true,
		},
		{
			// The output node carries no explicit capacitance, so only
			// the Cmin floor bounds its update; with recovery disabled
			// a jittering device current makes the edge step
			// unconvergeable.
			name: "zero-capacitance node",
			deck: "zerocap\nVdd vdd 0 DC 1.2\n" +
				"Vin in 0 PWL(0 0 1n 0 1.05n 1.2)\n" +
				"Mn out in 0 0 nmos W=1.4u L=0.7u\n" +
				"Mp out in vdd vdd pmos W=2.8u L=0.7u\n",
			opts: Options{
				TStop: 2e-9, DTMin: 1e-13,
				Recovery:  Recovery{Disable: true},
				Intercept: stuck(1e-9),
			},
			kind:     simerr.ErrNoConvergence,
			wantNode: true,
		},
		{
			// Two rails shorted through resistors circulate a huge DC
			// loop current through the free node x; the step budget
			// bounds the runaway and salvages what was simulated.
			name: "v-source loop",
			deck: "vloop\nV1 a 0 DC 1.2\nV2 b 0 DC 0\n" +
				"R1 a x 1\nR2 x b 1\nC1 x 0 1f\n",
			opts: Options{TStop: 1e-9, MaxSteps: 3},
			kind: simerr.ErrBudget,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := flatten(t, tc.deck)
			res, err := Simulate(f, tech07(), tc.opts)
			if !errors.Is(err, tc.kind) {
				t.Fatalf("want %v, got %v", tc.kind, err)
			}
			var se *simerr.Error
			if !errors.As(err, &se) {
				t.Fatalf("error must be a *simerr.Error, got %T", err)
			}
			if tc.wantNode && se.Node == "" {
				t.Error("error must name the implicated node")
			}
			if res == nil {
				t.Fatal("partial result must be returned")
			}
			any := false
			for _, tr := range res.Traces {
				if tr.Len() > 0 {
					any = true
				}
			}
			if !any {
				t.Error("partial result must carry at least the initial sample")
			}
		})
	}
}

// TestVSourceConflictRejected documents the compile-time flavor of the
// V-source loop: two ideal sources fighting over one node cannot run at
// all, so it is rejected as a configuration error with a nil result.
func TestVSourceConflictRejected(t *testing.T) {
	f := flatten(t, "vshort\nV1 a 0 DC 1.2\nV2 a 0 DC 0\nR1 a 0 1k\n")
	res, err := Simulate(f, tech07(), Options{TStop: 1e-9})
	if err == nil || res != nil {
		t.Fatalf("conflicting sources must be rejected pre-run, got res=%v err=%v", res, err)
	}
}

// TestRunReturnsPartialOnFailure covers the Run wrapper: a runtime
// failure must surface the partial waveform alongside the typed error
// instead of dropping it (historically Run returned nil on
// non-convergence).
func TestRunReturnsPartialOnFailure(t *testing.T) {
	c := circuits.InverterChain(tech07(), 1, 50e-15)
	stim := circuit.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 0.5e-9, TRise: 50e-12,
	}
	rr, err := Run(c, stim, RunOptions{Options: Options{
		TStop: 4e-9,
		Intercept: func(info EvalInfo, ids float64) float64 {
			if info.T >= 1e-9 {
				return math.NaN()
			}
			return ids
		},
	}})
	if !errors.Is(err, simerr.ErrNumerical) {
		t.Fatalf("want ErrNumerical, got %v", err)
	}
	if rr == nil || rr.Result == nil {
		t.Fatal("Run must return the partial result alongside the error")
	}
	if tr := rr.OutTrace("out"); tr == nil || tr.Len() < 2 {
		t.Error("partial result must carry the pre-failure waveform")
	}
}
