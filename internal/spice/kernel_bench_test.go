package spice

import (
	"testing"

	"mtcmos/internal/circuit"
	"mtcmos/internal/circuits"
	"mtcmos/internal/netlist"
)

// Kernel benchmarks: the DC-heavy paths (operating points, standby
// analysis, witness-style DC replay) under the numeric-probe dense
// oracle vs the analytic-stamp sparse Newton kernel. scripts/bench.sh
// renders these into BENCH_kernel.json; the custom metrics report the
// Newton-iteration and device-evaluation counts per solve so a speedup
// can be attributed (same iterations, cheaper iteration vs fewer
// iterations).

// engineFor compiles a gate-level circuit biased at one input vector
// and seeds node voltages from a logic evaluation — the same warm
// start the standby analysis and the experiments use.
func engineFor(b *testing.B, c *circuit.Circuit, inputs map[string]bool) (*Engine, map[string]float64) {
	b.Helper()
	nl, err := c.Netlist(circuit.Stimulus{Old: inputs, New: inputs})
	if err != nil {
		b.Fatal(err)
	}
	f, err := nl.Flatten()
	if err != nil {
		b.Fatal(err)
	}
	e, err := Compile(f, c.Tech)
	if err != nil {
		b.Fatal(err)
	}
	vals, err := c.Evaluate(inputs)
	if err != nil {
		b.Fatal(err)
	}
	seed := make(map[string]float64, len(vals))
	for k, bit := range vals {
		if bit {
			seed[netlist.CanonNode(k)] = c.Tech.Vdd
		}
	}
	return e, seed
}

// warmSeed settles every strongly-driven node with a short relaxation
// transient and returns the final voltages — the two-stage pattern the
// standby analysis uses before its Newton solve.
func warmSeed(b *testing.B, e *Engine, seed map[string]float64) map[string]float64 {
	b.Helper()
	res, err := e.Run(Options{TStop: 2e-6, DTMax: 0.2e-6, InitialV: seed})
	if err != nil {
		b.Fatal(err)
	}
	warm := make(map[string]float64, len(e.names))
	for _, name := range e.names {
		warm[name] = res.Traces[name].Final()
	}
	return warm
}

func benchOP(b *testing.B, e *Engine, seed map[string]float64, solver Solver) {
	b.Helper()
	b.ReportAllocs()
	iters, evals := 0, 0
	for i := 0; i < b.N; i++ {
		_, st, err := e.OperatingPointStats(seed, 0, solver)
		if err != nil {
			b.Fatal(err)
		}
		if st.FellBack {
			b.Fatal("sparse kernel fell back to dense")
		}
		iters += st.Iterations
		evals += st.Evals
	}
	b.ReportMetric(float64(iters)/float64(b.N), "newton-iters/op")
	b.ReportMetric(float64(evals)/float64(b.N), "mos-evals/op")
}

var kernelSolvers = []Solver{SolverDense, SolverSparse}

// BenchmarkKernelOPAdder: DC operating point of the 4-bit mirror adder
// (the scale where auto switches to sparse).
func BenchmarkKernelOPAdder(b *testing.B) {
	ad := circuits.RippleCarryAdder(tech07(), 4, 20e-15)
	ad.SleepWL = 20
	e, seed := engineFor(b, ad.Circuit, ad.Inputs(9, 6, false))
	for _, solver := range kernelSolvers {
		b.Run(solver.String(), func(b *testing.B) { benchOP(b, e, seed, solver) })
	}
}

// BenchmarkKernelOPMultiplier: DC operating point of the 4x4 carry-save
// multiplier from a relaxation-settled warm start — the largest DC
// solve the experiments run per size point, in the two-stage shape the
// standby analysis uses. (The paper's 8x8 instance is ~4x the nodes;
// dense grows cubically, so the gap widens further there.)
func BenchmarkKernelOPMultiplier(b *testing.B) {
	m := circuits.CarrySaveMultiplier(tech07(), 4, 15e-15)
	m.SleepWL = 40
	e, seed := engineFor(b, m.Circuit, m.Inputs(0xF, 0x9))
	warm := warmSeed(b, e, seed)
	for _, solver := range kernelSolvers {
		b.Run(solver.String(), func(b *testing.B) { benchOP(b, e, warm, solver) })
	}
}

// BenchmarkKernelStandby: the full standby-leakage analysis of the
// 3-bit adder (warm-up transient plus two Newton DC solves), the
// workload behind the standby experiment's per-size rows.
func BenchmarkKernelStandby(b *testing.B) {
	for _, solver := range kernelSolvers {
		b.Run(solver.String(), func(b *testing.B) {
			ad := circuits.RippleCarryAdder(tech07(), 3, 20e-15)
			ad.SleepWL = 20
			inputs := ad.Inputs(3, 0, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := StandbyWith(ad.Circuit, inputs, solver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelWitnessReplay: many small DC solves — the shape of
// replaying prover witnesses through the operating-point solver
// (witness_op_test.go): bias a small deck and solve, repeatedly.
func BenchmarkKernelWitnessReplay(b *testing.B) {
	const deck = "witness replay\n" +
		"Vdd vdd 0 DC 1.2\n" +
		"Vs s 0 DC 1.2\n" +
		"Vt t 0 DC 1.2\n" +
		"Mpu x s vdd vdd pmos W=2.8u L=0.7u\n" +
		"Mpd x t 0 0 nmos W=1.4u L=0.7u\n" +
		"Mq y x vdd vdd pmos W=2.8u L=0.7u\n" +
		"Mr y x 0 0 nmos W=1.4u L=0.7u\n" +
		"Cl x 0 10f\n" +
		"C2 y 0 10f\n"
	nl, err := netlist.ParseString(deck)
	if err != nil {
		b.Fatal(err)
	}
	f, err := nl.Flatten()
	if err != nil {
		b.Fatal(err)
	}
	e, err := Compile(f, tech07())
	if err != nil {
		b.Fatal(err)
	}
	for _, solver := range kernelSolvers {
		b.Run(solver.String(), func(b *testing.B) { benchOP(b, e, nil, solver) })
	}
}
