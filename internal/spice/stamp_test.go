package spice

import (
	"math"
	"math/rand"
	"testing"

	"mtcmos/internal/circuit"
	"mtcmos/internal/circuits"
)

// stampDeck is a small MTCMOS block exercising every stamp kind: NMOS
// and PMOS in all regions, a sleep device with body effect on the
// virtual rail, resistors, grounded and floating capacitors.
const stampDeck = `stamp
Vdd vdd 0 DC 1.2
Vin a 0 DC 0.3
Vsl sleep 0 DC 1.2
Mp1 y a vdd vdd pmos W=2.8u L=0.7u
Mn1 y a vgnd 0 nmos W=1.4u L=0.7u
Mp2 z y vdd vdd pmos W=2.8u L=0.7u
Mn2 z y vgnd 0 nmos W=1.4u L=0.7u
Msl vgnd sleep 0 0 nmos_hvt W=7u L=0.7u
R1 y z 50k
C1 y 0 5f
C2 z vgnd 3f
`

// numericSystem probes the residual with central differences: the
// reference the analytic stamps must reproduce.
func numericSystem(e *Engine, v, vprev []float64, dt, gmin float64) (rhs []float64, jac [][]float64) {
	free := e.order
	nf := len(free)
	st := e.lease()
	defer e.release(st)
	st.res = &Result{}
	resid := func(k int) float64 {
		i := free[k]
		if dt > 0 {
			return e.residual(i, v, vprev, dt, gmin, st)
		}
		return e.deviceCurrentInto(i, v, nil) - gmin*v[i]
	}
	rhs = make([]float64, nf)
	jac = make([][]float64, nf)
	for k := range jac {
		jac[k] = make([]float64, nf)
		rhs[k] = resid(k)
	}
	const h = 1e-7
	for col, j := range free {
		old := v[j]
		v[j] = old + h
		for row := range jac {
			jac[row][col] = resid(row)
		}
		v[j] = old - h
		for row := range jac {
			jac[row][col] = (jac[row][col] - resid(row)) / (2 * h)
		}
		v[j] = old
	}
	return rhs, jac
}

func checkStampAgainstNumeric(t *testing.T, e *Engine, dt float64, seed int64) {
	t.Helper()
	sp := e.sparse()
	w := sp.lease()
	defer sp.release(w)
	rng := rand.New(rand.NewSource(seed))
	n := len(e.names)
	v := make([]float64, n)
	vprev := make([]float64, n)
	for trial := 0; trial < 8; trial++ {
		for i := 0; i < n; i++ {
			v[i] = rng.Float64() * e.tech.Vdd
			vprev[i] = v[i] + (rng.Float64()-0.5)*0.1
		}
		for _, s := range e.srcs {
			if s.node != groundIdx {
				v[s.node] = s.v.At(0)
			}
		}
		gmin := []float64{0, 1e-9, 1e-6}[trial%3]
		e.stampSystem(sp, w, v, vprev, dt, gmin, nil)
		nrhs, njac := numericSystem(e, v, vprev, dt, gmin)
		for k := range nrhs {
			if d := math.Abs(w.rhs[k] - nrhs[k]); d > 1e-12*(1+math.Abs(nrhs[k])) {
				t.Fatalf("trial %d: rhs[%d] stamped %g vs numeric %g", trial, k, w.rhs[k], nrhs[k])
			}
		}
		nf := len(e.order)
		for r := 0; r < nf; r++ {
			for c := 0; c < nf; c++ {
				s := sp.sym.slot(int32(r), int32(c))
				got := 0.0
				if s >= 0 {
					got = w.aval[s]
				}
				want := njac[r][c]
				// Central differences resolve ~6 digits; scale by the
				// row's largest conductance so tiny couplings in rows
				// dominated by big ones are not over-tested.
				rowScale := 0.0
				for cc := 0; cc < nf; cc++ {
					if a := math.Abs(njac[r][cc]); a > rowScale {
						rowScale = a
					}
				}
				if d := math.Abs(got - want); d > 1e-5*rowScale+1e-13 {
					t.Fatalf("trial %d: jac[%d][%d] (%s,%s) stamped %g vs numeric %g",
						trial, r, c, e.names[e.order[r]], e.names[e.order[c]], got, want)
				}
			}
		}
	}
}

// TestStampMatchesNumericJacobianDC pins the DC assembly against the
// numeric probe used by the dense oracle.
func TestStampMatchesNumericJacobianDC(t *testing.T) {
	e, err := Compile(flatten(t, stampDeck), tech07())
	if err != nil {
		t.Fatal(err)
	}
	checkStampAgainstNumeric(t, e, 0, 11)
}

// TestStampMatchesNumericJacobianTransient adds the backward-Euler
// companion stamps (grounded caps, floating caps, Cmin excluded — the
// engine's residual adds no Cmin either) and checks against
// Engine.residual.
func TestStampMatchesNumericJacobianTransient(t *testing.T) {
	e, err := Compile(flatten(t, stampDeck), tech07())
	if err != nil {
		t.Fatal(err)
	}
	checkStampAgainstNumeric(t, e, 2e-12, 23)
}

// TestStampMatchesNumericJacobianAdder runs the same agreement check on
// a generated MTCMOS ripple-carry adder: many devices per node, shared
// virtual ground, body effect everywhere.
func TestStampMatchesNumericJacobianAdder(t *testing.T) {
	ad := circuits.RippleCarryAdder(tech07(), 2, 20e-15)
	ad.SleepWL = 15
	inputs := ad.Inputs(2, 1, false)
	nl, err := ad.Circuit.Netlist(circuit.Stimulus{Old: inputs, New: inputs})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := nl.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(flat, ad.Tech)
	if err != nil {
		t.Fatal(err)
	}
	checkStampAgainstNumeric(t, e, 0, 31)
	checkStampAgainstNumeric(t, e, 1e-12, 37)
}

func TestParseSolver(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Solver
		ok   bool
	}{
		{"", SolverAuto, true},
		{"auto", SolverAuto, true},
		{"dense", SolverDense, true},
		{"sparse", SolverSparse, true},
		{"cholesky", SolverAuto, false},
	} {
		got, err := ParseSolver(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSolver(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, s := range []Solver{SolverAuto, SolverDense, SolverSparse} {
		back, err := ParseSolver(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v: got %v, %v", s, back, err)
		}
	}
}
