package mtcmos_test

import (
	"fmt"
	"strings"
	"testing"

	"mtcmos"
)

// TestFacadeQuickstart exercises the package-documentation quick start
// end to end through the public API only.
func TestFacadeQuickstart(t *testing.T) {
	tech := mtcmos.Tech07()
	tree := mtcmos.InverterTree(&tech, 3, 3, 50e-15)
	tree.SleepWL = 8
	res, err := mtcmos.Simulate(tree, mtcmos.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 1e-9, TRise: 50e-12,
	}, mtcmos.SwitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := res.Delay("s3_0")
	if !ok || d <= 0 {
		t.Fatalf("delay = %g, %v", d, ok)
	}
	if res.PeakVx <= 0 {
		t.Error("no bounce reported")
	}
}

func TestFacadeBuildAndSize(t *testing.T) {
	tech := mtcmos.Tech07()
	c := mtcmos.NewCircuit("demo", &tech)
	c.Input("a")
	c.Input("b")
	if _, err := c.AddGate(mtcmos.Nand2, "g1", "n1", 1, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate(mtcmos.Inv, "g2", "y", 1, "n1"); err != nil {
		t.Fatal(err)
	}
	c.MarkOutput("y")
	c.SetLoad("y", 30e-15)
	trs := []mtcmos.Transition{{
		Old:   map[string]bool{"a": false, "b": true},
		New:   map[string]bool{"a": true, "b": true},
		Label: "a rise",
	}}
	sz, err := mtcmos.SizeForDelayTarget(c, mtcmos.SizingConfig{}, trs, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sz.WL <= 0 {
		t.Fatalf("bad sizing %+v", sz)
	}
	if mtcmos.SumOfWidths(c) <= 0 {
		t.Error("sum of widths must be positive")
	}
}

func TestFacadeSpiceEngineAgreesOnLogic(t *testing.T) {
	tech := mtcmos.Tech07()
	c := mtcmos.InverterChain(&tech, 2, 20e-15)
	c.SleepWL = 10
	stim := mtcmos.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 0.5e-9, TRise: 50e-12,
	}
	res, err := mtcmos.SimulateSpice(c, stim, mtcmos.SpiceOptions{
		Options: mtcmos.EngineOptions{TStop: 5e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.OutTrace("out").Final(); v < tech.Vdd-0.1 {
		t.Errorf("chain output must settle high, got %g", v)
	}
}

func TestFacadeNetlistRoundTrip(t *testing.T) {
	deck := "demo\nR1 a 0 1k\nC1 a 0 1p\nV1 a 0 DC 1\n"
	nl, err := mtcmos.ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	tech := mtcmos.Tech07()
	res, err := mtcmos.SimulateNetlist(nl, &tech, mtcmos.EngineOptions{TStop: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Trace("a").Final(); v < 0.99 {
		t.Errorf("sourced node = %g", v)
	}
}

func TestFacadePowerAndVectors(t *testing.T) {
	tech := mtcmos.Tech07()
	ad := mtcmos.RippleCarryAdder(&tech, 3, 20e-15)
	ad.SleepWL = 10
	ps, err := mtcmos.AnalyzePower(ad.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if ps.LeakageReduction < 100 {
		t.Errorf("leakage reduction = %g", ps.LeakageReduction)
	}
	if mtcmos.SwitchingPower(0.5, 1e-12, 1.2, 1e8) <= 0 {
		t.Error("switching power formula broken")
	}
	sp, err := mtcmos.NewVectorSpace(mtcmos.BitNames("a", 3)...)
	if err != nil {
		t.Fatal(err)
	}
	if sp.PairCount() != 64 {
		t.Errorf("pair count = %d", sp.PairCount())
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	exps := mtcmos.Experiments()
	if len(exps) != 20 {
		t.Fatalf("registry size = %d, want 20", len(exps))
	}
	out, err := mtcmos.RunExperiment("widths", mtcmos.ExperimentConfig{Fast: true, MultiplierBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) == 0 {
		t.Error("widths produced no table")
	}
	if _, err := mtcmos.RunExperiment("nosuch", mtcmos.ExperimentConfig{}); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestFacadeHierarchyAndStandby(t *testing.T) {
	tech := mtcmos.Tech07()
	chain := mtcmos.InverterChain(&tech, 6, 20e-15)
	blocks, err := mtcmos.PartitionByLevel(chain, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mtcmos.HierarchyConfig{Blocks: blocks, MaxBounce: 0.05}
	trs := []mtcmos.HierarchyTransition{
		{Old: map[string]bool{"in": false}, New: map[string]bool{"in": true}},
	}
	plan, err := mtcmos.AnalyzeHierarchy(chain, cfg, trs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalWL <= 0 || len(plan.Groups) == 0 {
		t.Fatalf("bad plan %+v", plan)
	}
	if err := mtcmos.ApplyHierarchy(chain, cfg, plan); err != nil {
		t.Fatal(err)
	}

	ad := mtcmos.RippleCarryAdder(&tech, 2, 20e-15)
	ad.SleepWL = 20
	sb, err := mtcmos.Standby(ad.Circuit, ad.Inputs(1, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if sb.Reduction < 100 {
		t.Errorf("standby reduction = %g", sb.Reduction)
	}
}

func TestFacadeAccuracyOptions(t *testing.T) {
	tech := mtcmos.Tech07()
	tree := mtcmos.InverterTree(&tech, 3, 3, 50e-15)
	tree.SleepWL = 8
	stim := mtcmos.Stimulus{
		Old: map[string]bool{"in": false}, New: map[string]bool{"in": true},
		TEdge: 1e-9, TRise: 50e-12,
	}
	plain, err := mtcmos.Simulate(tree, stim, mtcmos.SwitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := mtcmos.Simulate(tree, stim, mtcmos.SwitchOptions{InputSlope: true, Triode: true})
	if err != nil {
		t.Fatal(err)
	}
	dp, _ := plain.Delay("s3_0")
	dr, _ := refined.Delay("s3_0")
	if dr <= dp {
		t.Errorf("refined model must be slower: %g vs %g", dr, dp)
	}
}

// TestFacadeBatchAndSweep exercises the compiled-circuit batch API: a
// batch over stimuli and a sweep over sleep sizes, both matching
// one-shot Simulate exactly at any worker count.
func TestFacadeBatchAndSweep(t *testing.T) {
	tech := mtcmos.Tech07()
	tree := mtcmos.InverterTree(&tech, 3, 3, 50e-15)
	tree.SleepWL = 8
	cp, err := mtcmos.CompileCircuit(tree)
	if err != nil {
		t.Fatal(err)
	}
	up := mtcmos.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 1e-9, TRise: 50e-12,
	}
	down := mtcmos.Stimulus{
		Old:   map[string]bool{"in": true},
		New:   map[string]bool{"in": false},
		TEdge: 1e-9, TRise: 50e-12,
	}

	for _, workers := range []int{1, 4} {
		opts := mtcmos.BatchOptions{Workers: workers}
		batch, err := mtcmos.SimulateBatch(cp, []mtcmos.Stimulus{up, down}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, stim := range []mtcmos.Stimulus{up, down} {
			ref, err := mtcmos.Simulate(tree, stim, mtcmos.SwitchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, _ := batch[i].Delay("s3_0")
			want, _ := ref.Delay("s3_0")
			if got != want {
				t.Errorf("workers=%d stim %d: batch delay %g != %g", workers, i, got, want)
			}
		}

		wls := []float64{0, 2, 8, 20}
		sweep, err := mtcmos.SimulateSweep(cp, wls, up, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, wl := range wls {
			tree.SleepWL = wl
			ref, err := mtcmos.Simulate(tree, up, mtcmos.SwitchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			tree.SleepWL = 8
			got, _ := sweep[i].Delay("s3_0")
			want, _ := ref.Delay("s3_0")
			if got != want {
				t.Errorf("workers=%d wl=%g: sweep delay %g != %g", workers, wl, got, want)
			}
		}
	}
}

// TestFacadeProvePaths drives the path-condition prover through the
// public API: a conditional sneak deck yields one non-Always short
// with a witness, and a statically-floating-but-covered node is
// refuted.
func TestFacadeProvePaths(t *testing.T) {
	deck := `sneak
Vdd vdd 0 DC 1.2
Vs s 0 PWL(0 0 1n 0 1.05n 1.2)
Vt t 0 PWL(0 0 1n 0 1.05n 1.2)
Mpu x s vdd vdd pmos W=2.8u L=0.7u
Mpd x t 0 0 nmos W=1.4u L=0.7u
Cl x 0 10f
.end
`
	nl, err := mtcmos.ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	_, pf, err := mtcmos.ProvePaths(nl, mtcmos.GraphConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Shorts) != 1 || pf.Shorts[0].Always {
		t.Fatalf("want one conditional short, got %+v", pf.Shorts)
	}
	if got := pf.Shorts[0].Witness.String(); got != "s=0 t=1" {
		t.Errorf("witness = %q, want \"s=0 t=1\"", got)
	}
	tech := mtcmos.Tech07()
	diags := mtcmos.LintWith(nl, nil, &tech, mtcmos.LintOptions{Prove: true})
	found := false
	for _, d := range diags {
		if d.Code == "MT023" && d.Witness == "s=0 t=1" {
			found = true
		}
	}
	if !found {
		t.Errorf("LintWith(Prove) missing the MT023 witness: %v", diags)
	}
}

// TestFacadeRefinedBound exercises the mutual-exclusion refinement
// through the public API, asserting the full bound ladder
// simulated ≤ refined ≤ static ≤ sum on the select tree.
func TestFacadeRefinedBound(t *testing.T) {
	tech := mtcmos.Tech07()
	c := mtcmos.SelectTree(&tech, 6, 20e-15)

	refined, err := mtcmos.RefinedLevelBound(c)
	if err != nil {
		t.Fatal(err)
	}
	static, err := mtcmos.StaticLevelBound(c)
	if err != nil {
		t.Fatal(err)
	}
	sum := mtcmos.SumOfWidths(c)
	vec := func(sel bool, on bool) map[string]bool {
		in := map[string]bool{"sel": sel}
		for i := 0; i < 6; i++ {
			in[fmt.Sprintf("a%d", i)] = on
			in[fmt.Sprintf("b%d", i)] = on
		}
		return in
	}
	// The refined bound covers settled discharge events (DESIGN.md
	// §11): data falls within a stable branch, and a branch flip with
	// rising data. A mixed edge (select flip + data fall together) can
	// glitch past the refined bound — that hazard case is what the
	// unrefined static bound still covers.
	sim, err := mtcmos.SimultaneousWidth(c, mtcmos.SizingConfig{}, []mtcmos.Transition{
		{Old: vec(false, true), New: vec(false, false), Label: "A falls"},
		{Old: vec(true, true), New: vec(true, false), Label: "B falls"},
		{Old: vec(false, false), New: vec(true, true), Label: "branch flip, data rises"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(sim <= refined && refined <= static && static <= sum) {
		t.Fatalf("bound ladder violated: sim %.1f, refined %.1f, static %.1f, sum %.1f", sim, refined, static, sum)
	}
	if refined >= static {
		t.Errorf("refinement did not tighten: refined %.1f, static %.1f", refined, static)
	}

	r, err := mtcmos.RefineLevels(c, mtcmos.ExclusionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Proven == 0 || len(r.Pairs) == 0 {
		t.Errorf("no exclusions proven: %+v", r.Stats)
	}

	st, err := mtcmos.SizeForStaticLevel(c, mtcmos.WithRefinement(mtcmos.ExclusionConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Refined != refined || st.Exclusions == nil {
		t.Errorf("SizeForStaticLevel refinement mismatch: %.1f vs %.1f", st.Refined, refined)
	}
}
