module mtcmos

go 1.22
