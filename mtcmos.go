// Package mtcmos is a toolkit for sizing the high-Vt sleep transistors
// of Multi-Threshold CMOS (MTCMOS) circuits, reproducing Kao,
// Chandrakasan and Antoniadis, "Transistor Sizing Issues and Tool For
// Multi-Threshold CMOS Technology", DAC 1997.
//
// The toolkit provides:
//
//   - a gate-level circuit model with an MTCMOS virtual-ground rail
//     (Circuit, NewCircuit, and the generator functions InverterTree,
//     RippleCarryAdder, CarrySaveMultiplier matching the paper's
//     benchmark circuits);
//   - the paper's variable-breakpoint switch-level simulator
//     (Simulate), which computes MTCMOS delays as a function of input
//     vector and sleep-transistor size orders of magnitude faster than
//     a transistor-level transient;
//   - a SPICE-class reference transient engine over flat transistor
//     netlists (SimulateSpice, ParseNetlist) for detailed verification;
//   - sleep-transistor sizing methods (SizeForDelayTarget,
//     SizeForPeakCurrent, SumOfWidths) and power/leakage analysis
//     (AnalyzePower);
//   - every figure and table of the paper's evaluation as a runnable
//     experiment (Experiments, RunExperiment).
//
// # Quick start
//
//	tech := mtcmos.Tech07()
//	tree := mtcmos.InverterTree(&tech, 3, 3, 50e-15) // paper Fig. 4
//	tree.SleepWL = 8                                 // sleep device W/L
//	res, err := mtcmos.Simulate(tree, mtcmos.Stimulus{
//		Old:   map[string]bool{"in": false},
//		New:   map[string]bool{"in": true},
//		TEdge: 1e-9, TRise: 50e-12,
//	}, mtcmos.SwitchOptions{})
//	if err != nil { ... }
//	d, _ := res.Delay("s3_0")
//	fmt.Println("delay:", d, "bounce:", res.PeakVx)
//
// See the examples directory for complete programs.
package mtcmos

import (
	"context"
	"io"

	"mtcmos/internal/circuit"
	"mtcmos/internal/circuits"
	"mtcmos/internal/core"
	"mtcmos/internal/experiments"
	"mtcmos/internal/hierarchy"
	"mtcmos/internal/lint"
	"mtcmos/internal/mosfet"
	"mtcmos/internal/netlist"
	"mtcmos/internal/power"
	"mtcmos/internal/report"
	"mtcmos/internal/sca"
	"mtcmos/internal/sched"
	"mtcmos/internal/shard"
	shardnet "mtcmos/internal/shard/net"
	"mtcmos/internal/simerr"
	"mtcmos/internal/sizing"
	"mtcmos/internal/spice"
	"mtcmos/internal/vectors"
	"mtcmos/internal/wave"
)

// --- Technology ---

// Tech holds the per-process device parameters shared by every model;
// see Tech07 and Tech03 for the paper's two nodes.
type Tech = mosfet.Tech

// Tech07 returns the 0.7um technology of the paper's inverter-tree and
// adder experiments (Vdd=1.2V, Vtn=0.35, sleep Vt=0.75).
func Tech07() Tech { return mosfet.Tech07() }

// Tech03 returns the 0.3um technology of the paper's 8x8 multiplier
// experiment (Vdd=1.0V, Vtn=0.2, sleep Vt=0.7).
func Tech03() Tech { return mosfet.Tech03() }

// SleepResistance returns the linear-resistor approximation of an ON
// high-Vt NMOS sleep transistor of the given W/L (paper section 2.1).
func SleepResistance(t *Tech, wl float64) (float64, error) {
	return mosfet.SleepResistance(t, wl)
}

// --- Circuits ---

// Circuit is a combinational gate-level circuit; set SleepWL > 0 to
// gate its pulldown rail with an NMOS sleep transistor (MTCMOS mode)
// and VGndCap to add virtual-ground parasitic capacitance.
type Circuit = circuit.Circuit

// Gate is one instance of a library gate inside a Circuit.
type Gate = circuit.Gate

// Net is a named signal inside a Circuit.
type Net = circuit.Net

// GateKind identifies a gate in the library (Inv, Nand2, ...,
// MirrorCarry, MirrorSum).
type GateKind = circuit.Kind

// The gate library. MirrorCarry/MirrorSum are the complex gates of the
// 28-transistor mirror full adder used by the paper's benchmarks.
const (
	Inv         = circuit.Inv
	Buf         = circuit.Buf
	Nand2       = circuit.Nand2
	Nand3       = circuit.Nand3
	Nor2        = circuit.Nor2
	Nor3        = circuit.Nor3
	And2        = circuit.And2
	Or2         = circuit.Or2
	Xor2        = circuit.Xor2
	Xnor2       = circuit.Xnor2
	Aoi21       = circuit.Aoi21
	Oai21       = circuit.Oai21
	MirrorCarry = circuit.MirrorCarry
	MirrorSum   = circuit.MirrorSum
)

// NewCircuit returns an empty circuit over the given technology; add
// primary inputs with Input, gates with AddGate, observed outputs with
// MarkOutput, and explicit loads with SetLoad.
func NewCircuit(name string, tech *Tech) *Circuit { return circuit.New(name, tech) }

// Stimulus describes one input-vector transition: inputs hold Old
// until TEdge then ramp to New over TRise.
type Stimulus = circuit.Stimulus

// InverterTree builds the paper's Fig. 4 clock-distribution tree; the
// paper instance is InverterTree(&tech, 3, 3, 50e-15).
func InverterTree(tech *Tech, levels, branch int, load float64) *Circuit {
	return circuits.InverterTree(tech, levels, branch, load)
}

// InverterChain builds a linear inverter chain for calibration.
func InverterChain(tech *Tech, n int, load float64) *Circuit {
	return circuits.InverterChain(tech, n, load)
}

// Adder is a generated mirror ripple-carry adder with operand helpers.
type Adder = circuits.Adder

// RippleCarryAdder builds the paper's Fig. 12 N-bit mirror adder
// (28 transistors per bit).
func RippleCarryAdder(tech *Tech, bits int, load float64) *Adder {
	return circuits.RippleCarryAdder(tech, bits, load)
}

// Multiplier is a generated carry-save array multiplier with operand
// helpers; ProductNets names the product-bit nets in weight order.
type Multiplier = circuits.Multiplier

// CarrySaveMultiplier builds the paper's Fig. 6 NxN carry-save array
// multiplier (the paper's instance is 8x8).
func CarrySaveMultiplier(tech *Tech, n int, load float64) *Multiplier {
	return circuits.CarrySaveMultiplier(tech, n, load)
}

// SelectTree builds the N-bit two-way decoded datapath whose branches
// are enabled by complementary selects — the canonical structure whose
// cross-branch discharges the mutual-exclusion refinement
// (RefineLevels) can prove exclusive.
func SelectTree(tech *Tech, bits int, load float64) *Circuit {
	return circuits.SelectTree(tech, bits, load)
}

// --- Switch-level simulation (the paper's tool) ---

// SwitchOptions configures the variable-breakpoint switch-level
// simulator.
type SwitchOptions = core.Options

// SwitchResult reports waveforms, Vdd/2 crossing times, virtual-ground
// bounce and sleep-device current for one simulated transition.
type SwitchResult = core.Result

// Simulate runs the paper's variable-breakpoint switch-level simulator
// on one input-vector transition. With SleepWL == 0 the circuit is
// simulated as plain CMOS — the baseline for "% degradation due to
// MTCMOS". For many transitions on one circuit, compile once with
// CompileCircuit and use SimulateBatch/SimulateSweep instead.
func Simulate(c *Circuit, stim Stimulus, opts SwitchOptions) (*SwitchResult, error) {
	return core.Simulate(c, stim, opts)
}

// CompiledCircuit is a circuit prepared once for repeated switch-level
// runs: topology, device characterization and sleep resistances are
// derived at compile time, and per-run scratch state is pooled. It is
// immutable and safe for concurrent runs; vary the sleep size per run
// with RunWL/RunDomains rather than mutating the Circuit.
type CompiledCircuit = core.Compiled

// CompileCircuit prepares a circuit for run-many use, snapshotting its
// sleep-domain configuration (SleepWL, VGndCap) as compiled.
func CompileCircuit(c *Circuit) (*CompiledCircuit, error) { return core.Compile(c) }

// BatchOptions configures the parallel batch entry points.
type BatchOptions struct {
	// Workers bounds the worker pool: 0 means one worker per CPU, 1
	// forces serial execution. Results are identical for any value.
	Workers int
	// Sim is the per-run simulator configuration; its Ctx cancels the
	// whole batch.
	Sim SwitchOptions
}

// SimulateBatch runs one switch-level transient per stimulus on the
// parallel sweep executor. Results come back in input order; on
// failure the error belongs to the lowest-index failing stimulus, and
// the corresponding result slot carries any partial result.
func SimulateBatch(cp *CompiledCircuit, stims []Stimulus, opts BatchOptions) ([]*SwitchResult, error) {
	return sched.Map(opts.Sim.Ctx, opts.Workers, len(stims), func(i int) (*SwitchResult, error) {
		return cp.Run(stims[i], opts.Sim)
	})
}

// SimulateSweep runs one stimulus at each sleep W/L (0 = plain CMOS)
// on the parallel sweep executor — the W/L-axis fan-out behind the
// paper's delay-vs-size figures. Results come back in wls order.
func SimulateSweep(cp *CompiledCircuit, wls []float64, stim Stimulus, opts BatchOptions) ([]*SwitchResult, error) {
	return sched.Map(opts.Sim.Ctx, opts.Workers, len(wls), func(i int) (*SwitchResult, error) {
		return cp.RunWL(wls[i], stim, opts.Sim)
	})
}

// --- Reference transient engine ---

// SpiceOptions configures the SPICE-class reference engine.
type SpiceOptions = spice.RunOptions

// SpiceResult holds reference-engine traces and delay measurements.
type SpiceResult = spice.RunResult

// SimulateSpice expands the circuit to a flat transistor netlist and
// runs the reference transient engine on it.
func SimulateSpice(c *Circuit, stim Stimulus, opts SpiceOptions) (*SpiceResult, error) {
	return spice.Run(c, stim, opts)
}

// StandbyResult reports the reference-engine sleep-mode analysis:
// where the virtual ground floats and the standby-vs-active leakage.
type StandbyResult = spice.StandbyResult

// Standby computes an MTCMOS circuit's sleep-mode operating point with
// the reference engine's full-Newton DC solver: the virtual-ground
// float voltage and the leakage reduction the sleep device buys.
func Standby(c *Circuit, inputs map[string]bool) (*StandbyResult, error) {
	return spice.Standby(c, inputs)
}

// StandbyWith is Standby with an explicit solver-kernel choice for the
// DC analysis.
func StandbyWith(c *Circuit, inputs map[string]bool, solver Solver) (*StandbyResult, error) {
	return spice.StandbyWith(c, inputs, solver)
}

// Solver selects the reference engine's equation-solver kernel: the
// analytic-stamp sparse Newton kernel, the numeric-probe dense oracle,
// or size-based auto selection (EngineOptions.Solver for transients,
// StandbyWith for DC analyses; -solver on the command-line tools).
type Solver = spice.Solver

// The solver kernels. SolverAuto picks by circuit size (and keeps the
// relaxation solver for transients); SolverDense and SolverSparse
// force a matrix kernel.
const (
	SolverAuto   = spice.SolverAuto
	SolverDense  = spice.SolverDense
	SolverSparse = spice.SolverSparse
)

// ParseSolver parses a -solver flag value: "auto" (or empty), "dense"
// or "sparse".
func ParseSolver(s string) (Solver, error) { return spice.ParseSolver(s) }

// Netlist is a parsed SPICE-dialect deck; see ParseNetlist.
type Netlist = netlist.Netlist

// ParseNetlist reads a deck in the toolkit's SPICE dialect (M/C/R/V
// cards, .subckt/.ends; see package documentation in
// internal/netlist).
func ParseNetlist(r io.Reader) (*Netlist, error) { return netlist.Parse(r) }

// SimulateNetlist runs the reference engine directly on a parsed deck.
func SimulateNetlist(nl *Netlist, tech *Tech, opts spice.Options) (*spice.Result, error) {
	flat, err := nl.Flatten()
	if err != nil {
		return nil, err
	}
	return spice.Simulate(flat, tech, opts)
}

// EngineOptions configures a raw netlist transient (no circuit-level
// conveniences).
type EngineOptions = spice.Options

// --- Failure taxonomy and resilience ---

// Typed failure classes returned (wrapped) by both simulators and the
// sizing search; test with errors.Is. See DESIGN.md §8.
var (
	// ErrNoConvergence: the relaxation solver gave up after the whole
	// recovery ladder was exhausted.
	ErrNoConvergence = simerr.ErrNoConvergence
	// ErrNumerical: a NaN/Inf poisoned a node update (failed fast).
	ErrNumerical = simerr.ErrNumerical
	// ErrBudget: a step/eval/event/wall-clock budget or -timeout ran out.
	ErrBudget = simerr.ErrBudget
	// ErrCancelled: the run's context was cancelled (e.g. Ctrl-C).
	ErrCancelled = simerr.ErrCancelled
)

// SimError is the structured simulation failure: a class above plus
// diagnostics (node, simulated time, timestep, iteration counts).
// Runtime failures return it alongside the partial result.
type SimError = simerr.Error

// IsRecoverable reports whether a failure is worth retrying with
// different options (budgets, recovery ladder) rather than a
// configuration error or a deliberate cancellation.
func IsRecoverable(err error) bool { return simerr.IsRecoverable(err) }

// RecoveryConfig tunes the reference engine's convergence-recovery
// ladder (EngineOptions.Recovery).
type RecoveryConfig = spice.Recovery

// RecoveryStats counts, per run, how often each recovery rung fired
// and how many failing steps were rescued.
type RecoveryStats = spice.RecoveryStats

// RecoveryRung identifies a rung of the convergence-recovery ladder in
// escalation order.
type RecoveryRung = spice.Rung

// The ladder rungs: timestep back-off, Gauss-Seidel under-relaxation,
// Gmin conductance stepping, source ramping.
const (
	RungNone       = spice.RungNone
	RungBackoff    = spice.RungBackoff
	RungDamping    = spice.RungDamping
	RungGmin       = spice.RungGmin
	RungSourceRamp = spice.RungSourceRamp
)

// EvalInfo describes one device evaluation to an Intercept hook.
type EvalInfo = spice.EvalInfo

// Intercept observes/modifies every device-current evaluation of the
// reference engine (EngineOptions.Intercept); the fault-injection
// harness in internal/faultinject is built on it.
type Intercept = spice.Intercept

// --- Static analysis (linting) ---

// Diagnostic is one static-analysis finding: a stable MTxxx code, a
// severity, the device or node it concerns, and a message.
type Diagnostic = lint.Diagnostic

// LintSeverity ranks a diagnostic; see LintInfo, LintWarn, LintError.
type LintSeverity = lint.Severity

// Diagnostic severities, ordered: error findings make a deck unfit to
// simulate, warn findings are suspicious but simulable, info findings
// are advisory.
const (
	LintInfo  = lint.Info
	LintWarn  = lint.Warn
	LintError = lint.Error
)

// LintRule is one registered static-analysis check; see LintRules.
type LintRule = lint.Rule

// LintRules returns the card-level rule registry (code, severity,
// description) in code order.
func LintRules() []LintRule { return lint.Rules() }

// LintGraphRules returns the graph-backed rule registry (MT018+): the
// rules that run over the static circuit analysis.
func LintGraphRules() []LintRule { return lint.GraphRules() }

// Lint statically analyzes a deck and/or a gate-level circuit before
// simulation: connectivity (floating nodes, missing DC paths,
// duplicate devices), electrical sanity (non-positive geometry,
// off-window dimensions, non-monotone PWL sources) and MTCMOS
// structure (gated rails with no sleep transistor, low-Vt sleep
// devices). Either of nl and c may be nil; tech enables the
// process-window checks. Findings come back sorted errors-first; see
// cmd/mtlint for the command-line front end.
func Lint(nl *Netlist, c *Circuit, tech *Tech) []Diagnostic {
	return lint.Run(nl, c, tech)
}

// LintAll is Lint with the graph-backed rules (MT018+) optionally
// enabled: channel-connected-component structure, statically
// always-on VDD→GND paths, missing pull networks, deep pass-gate
// chains, and the static level bound check.
func LintAll(nl *Netlist, c *Circuit, tech *Tech, graph bool) []Diagnostic {
	return lint.RunAll(nl, c, tech, graph)
}

// LintVectors validates one input-vector transition against a
// circuit's primary inputs (the MT017 rule).
func LintVectors(c *Circuit, old, new map[string]bool) []Diagnostic {
	return lint.CheckVectors(c, old, new)
}

// LintHasErrors reports whether any finding is error-severity.
func LintHasErrors(diags []Diagnostic) bool { return lint.HasErrors(diags) }

// --- Static circuit analysis ---

// GraphAnalysis is the static circuit analysis of a flattened deck:
// channel-connected components, rail classification, always-on
// VDD→GND paths, floating outputs, and deep conducting paths.
type GraphAnalysis = sca.Analysis

// GraphConfig tunes the static circuit analysis (series-stack depth
// limit).
type GraphConfig = sca.Config

// AnalyzeGraph flattens a deck and runs the static circuit analysis
// over it.
func AnalyzeGraph(nl *Netlist, cfg GraphConfig) (*GraphAnalysis, error) {
	flat, err := nl.Flatten()
	if err != nil {
		return nil, err
	}
	return sca.Analyze(flat, cfg), nil
}

// PathProof is the path-condition SAT proof over a GraphAnalysis:
// proven rail shorts (always-on and vector-dependent) with witness
// vectors, floating-output findings with reaching vectors, and
// refuted findings with their unsatisfiable cores. Obtain one with
// ProvePaths (or GraphAnalysis.Prove).
type PathProof = sca.Proof

// ProvenShort is one proven VDD→GND path: its rails, devices, path
// condition, and a witness input vector (Always means it conducts
// under every vector).
type ProvenShort = sca.ProvenShort

// ProvenFloating is a floating-output finding whose floating state the
// solver reached, with the witness vector that exhibits it.
type ProvenFloating = sca.ProvenFloating

// InfeasibleFloating is a floating-output finding the solver refuted:
// the pull paths in Core cannot all be off at once.
type InfeasibleFloating = sca.InfeasibleFloating

// PathWitness is an input vector as net=value assignments.
type PathWitness = sca.Witness

// ProofStats counts the proof's solver work (variables, clauses,
// queries, inconclusive budgeted queries, truncated enumerations).
type ProofStats = sca.ProofStats

// ProvePaths flattens a deck, runs the static circuit analysis, and
// proves or refutes its conditional DC paths with the path-condition
// SAT engine. mtlint -prove is the command-line front end.
func ProvePaths(nl *Netlist, cfg GraphConfig) (*GraphAnalysis, *PathProof, error) {
	a, err := AnalyzeGraph(nl, cfg)
	if err != nil {
		return nil, nil, err
	}
	return a, a.Prove(), nil
}

// LintOptions selects lint's optional passes: the graph-backed rules
// (Graph), the path-condition prover (Prove, implies Graph), and
// reporting of prover-suppressed findings (Verbose).
type LintOptions = lint.Options

// LintWith is Lint with explicit pass selection; LintAll is the
// Graph-only shorthand.
func LintWith(nl *Netlist, c *Circuit, tech *Tech, opts LintOptions) []Diagnostic {
	return lint.RunWith(nl, c, tech, opts)
}

// CircuitLevels is the topological levelization of a gate-level
// circuit with per-gate arrival windows.
type CircuitLevels = sca.Levels

// Levelize computes a circuit's topological levelization; it fails on
// combinational cycles.
func Levelize(c *Circuit) (*CircuitLevels, error) { return sca.Levelize(c) }

// StaticLevelBound returns the circuit's static per-level
// simultaneous-discharge width bound: the largest summed pulldown W/L
// whose arrival windows share one unit-delay level. It sits between
// the measured simultaneous-discharge width and the sum-of-widths.
func StaticLevelBound(c *Circuit) (float64, error) { return sca.StaticLevelBound(c) }

// ExclusionConfig tunes the SAT-backed mutual-exclusion refinement
// (pair and conflict budgets, prefilter vectors, worker fan-out).
type ExclusionConfig = sca.ExclConfig

// ExclusionStats summarizes one refinement run: pairs considered,
// refuted by simulation, proven by SAT, replay validations, and every
// budget truncation (truncated work always degrades toward the
// unrefined bound, never below soundness).
type ExclusionStats = sca.ExclusionStats

// ExclusivePair is one proven mutual exclusion between two gates.
type ExclusivePair = sca.ExclusivePair

// LevelRefinement is the full result of RefineLevels: per-level static
// and refined widths, the proven exclusions, and the proof statistics.
type LevelRefinement = sca.Refinement

// RefineLevels proves mutual exclusions between window-sharing gates
// with a two-frame SAT encoding over the circuit's expanded transistor
// deck and recomputes the per-level widths with exclusive gates
// contributing max instead of sum.
func RefineLevels(c *Circuit, cfg ExclusionConfig) (*LevelRefinement, error) {
	return sca.RefineLevels(c, cfg)
}

// RefinedLevelBound is the refined counterpart of StaticLevelBound:
//
//	simulated width ≤ RefinedLevelBound ≤ StaticLevelBound ≤ SumOfWidths
func RefinedLevelBound(c *Circuit) (float64, error) { return sca.RefinedLevelBound(c) }

// --- Sizing ---

// Transition is an input-vector pair evaluated during sizing.
type Transition = sizing.Transition

// SizingConfig carries common sizing inputs (observed outputs, edge
// shape, simulator options).
type SizingConfig = sizing.Config

// SizingResult reports the outcome of SizeForDelayTarget.
type SizingResult = sizing.DelayTargetResult

// PeakSizing reports the outcome of SizeForPeakCurrent.
type PeakSizing = sizing.PeakCurrentResult

// SumOfWidths returns the naive sum-of-internal-widths sleep size the
// paper calls "unnecessarily large" (in W/L units).
func SumOfWidths(c *Circuit) float64 { return sizing.SumOfWidths(c) }

// Degradation returns the fractional slowdown at sleep size wl vs the
// plain-CMOS baseline over the worst of the transitions.
func Degradation(c *Circuit, cfg SizingConfig, trs []Transition, wl float64) (float64, error) {
	return sizing.Degradation(c, cfg, trs, wl)
}

// SizeForDelayTarget finds the smallest sleep W/L whose worst-case
// degradation stays within target (e.g. 0.05 for the paper's 5%).
func SizeForDelayTarget(c *Circuit, cfg SizingConfig, trs []Transition, target, hi float64) (*SizingResult, error) {
	return sizing.DelayTarget(c, cfg, trs, target, hi)
}

// SizeForPeakCurrent applies the conservative peak-current method of
// paper section 4: hold the worst instantaneous discharge current to
// maxBounce volts across the sleep device.
func SizeForPeakCurrent(c *Circuit, cfg SizingConfig, trs []Transition, maxBounce float64) (*PeakSizing, error) {
	return sizing.PeakCurrent(c, cfg, trs, maxBounce)
}

// StaticSizing reports the static level-bound estimate (per-level
// widths, the bound, and the sum-of-widths it improves on).
type StaticSizing = sizing.StaticLevelResult

// StaticSizingOption configures SizeForStaticLevel; see WithRefinement.
type StaticSizingOption = sizing.StaticLevelOption

// WithRefinement asks SizeForStaticLevel to additionally run the
// SAT-backed mutual-exclusion refinement and fill the result's
// Refined* fields.
func WithRefinement(cfg ExclusionConfig) StaticSizingOption { return sizing.Refine(cfg) }

// SizeForStaticLevel computes the static level-bound sleep size from
// topology alone — no vectors, no simulation.
func SizeForStaticLevel(c *Circuit, opts ...StaticSizingOption) (*StaticSizing, error) {
	return sizing.StaticLevel(c, opts...)
}

// SimultaneousWidth measures, with the switch-level simulator, the
// worst instantaneous simultaneous-discharge width (Σ W/L) over the
// transitions — the quantity the static estimates bound.
func SimultaneousWidth(c *Circuit, cfg SizingConfig, trs []Transition) (float64, error) {
	return sizing.SimultaneousWidth(c, cfg, trs)
}

// --- Hierarchical sizing (DAC'98 follow-up extension) ---

// HierarchyConfig controls mutual-exclusion analysis: the block
// partition, bounce budget and edge shape.
type HierarchyConfig = hierarchy.Config

// HierarchyPlan is the hierarchical sizing outcome: groups of
// mutually-exclusive blocks, per-group sleep sizes, and the comparison
// against single-device and per-block sizing.
type HierarchyPlan = hierarchy.Plan

// HierarchyTransition is an input-vector pair analyzed for discharge
// overlap.
type HierarchyTransition = hierarchy.Transition

// PartitionByLevel groups gates by topological depth into nLevels
// blocks.
func PartitionByLevel(c *Circuit, nLevels int) ([][]int, error) {
	return hierarchy.PartitionByLevel(c, nLevels)
}

// PartitionByPrefix groups gates by a name prefix extracted with fn.
func PartitionByPrefix(c *Circuit, fn func(gateName string) string) [][]int {
	return hierarchy.PartitionByPrefix(c, fn)
}

// AnalyzeHierarchy measures per-block discharge windows with the
// switch-level simulator, merges blocks with mutually exclusive
// discharge patterns, and sizes each group's sleep device.
func AnalyzeHierarchy(c *Circuit, cfg HierarchyConfig, trs []HierarchyTransition) (*HierarchyPlan, error) {
	return hierarchy.Analyze(c, cfg, trs)
}

// ApplyHierarchy configures the circuit's sleep domains per the plan.
func ApplyHierarchy(c *Circuit, cfg HierarchyConfig, plan *HierarchyPlan) error {
	return hierarchy.Apply(c, cfg, plan)
}

// SleepDomain is one virtual-ground rail of a multi-domain circuit.
type SleepDomain = circuit.Domain

// --- Power ---

// PowerSummary aggregates switching, leakage and sleep-overhead
// figures for a circuit.
type PowerSummary = power.Summary

// AnalyzePower computes the power summary of a circuit (sleep-mode
// figures require SleepWL > 0).
func AnalyzePower(c *Circuit) (*PowerSummary, error) { return power.Analyze(c) }

// SwitchingPower returns the classic a*C*Vdd^2*f dynamic power (paper
// Eq. 1).
func SwitchingPower(activity, totalCap, vdd, fclk float64) float64 {
	return power.Switching(activity, totalCap, vdd, fclk)
}

// --- Vectors ---

// VectorSpace enumerates input-vector transitions for worst-case
// analysis (exhaustive, sampled, or greedy search).
type VectorSpace = vectors.Space

// NewVectorSpace builds a transition space over named input bits.
func NewVectorSpace(names ...string) (*VectorSpace, error) { return vectors.NewSpace(names...) }

// BitNames generates indexed input names prefix0..prefix<n-1>.
func BitNames(prefix string, n int) []string { return vectors.BitNames(prefix, n) }

// --- Experiments ---

// ExperimentConfig tunes experiment cost (fast mode, circuit sizes,
// reference-engine vector budgets).
type ExperimentConfig = experiments.Config

// ExperimentOutput holds an experiment's tables, series and notes.
type ExperimentOutput = experiments.Output

// Experiment couples an experiment ID to its runner and the paper
// artifact it regenerates.
type Experiment = experiments.Experiment

// Experiments lists every paper figure/table reproduction in paper
// order.
func Experiments() []Experiment { return experiments.Registry() }

// RunExperiment runs one experiment by ID ("fig5", "table1", ...).
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentOutput, error) {
	e, err := experiments.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg)
}

// --- Sharded execution ---

// ShardTask computes one index-contiguous slice of an independent-run
// grid; see RegisterShardTask. Tasks must be pure functions of
// (params, index) so sharded output is byte-identical to serial.
type ShardTask = shard.Task

// ShardOptions tunes a sharded grid run: shard/worker-pool geometry,
// retry backoff, heartbeat watchdog, quarantine threshold, and the
// checkpoint journal (see DESIGN.md §12).
type ShardOptions = shard.Options

// ShardRunner bundles ShardOptions for config structs
// (ExperimentConfig.Shard) and remembers the last run's stats.
type ShardRunner = shard.Runner

// ShardStats summarizes one sharded run: retries, worker deaths,
// resumed and quarantined shards.
type ShardStats = shard.Stats

// ShardResult is a merged grid: items in index order, nil where a
// quarantined shard's results would be.
type ShardResult = shard.Result

// ShardQuarantine is one isolated poison shard and the typed error
// that got it quarantined.
type ShardQuarantine = shard.Quarantine

// ShardSpawner starts worker subprocesses for a sharded run; nil
// degrades to in-process execution.
type ShardSpawner = shard.Spawner

// RegisterShardTask installs a grid task under a stable name, in both
// coordinator and worker binaries (call from an init function).
func RegisterShardTask(name string, t ShardTask) { shard.Register(name, t) }

// RunSharded executes a registered grid task over n items on the
// fault-tolerant shard executor and returns the index-ordered merge.
func RunSharded(ctx context.Context, task string, params any, n int, opts ShardOptions) (*ShardResult, error) {
	return shard.Run(ctx, task, params, n, opts)
}

// SelfShardSpawner spawns workers by re-executing the current binary
// with the given arguments (mtexp/mtsim pass "-worker").
func SelfShardSpawner(args ...string) ShardSpawner { return shard.SelfSpawner(args...) }

// ServeShardWorker runs the worker side of the shard protocol on the
// given streams until the coordinator disconnects.
func ServeShardWorker(ctx context.Context, in io.Reader, out io.Writer) error {
	return shard.ServeWorker(ctx, in, out)
}

// ShardTransport attaches workers for a sharded run; set
// ShardOptions.Transport to run shards remotely (TCPShardTransport)
// while keeping ShardOptions.Spawn as the local fallback rung.
type ShardTransport = shard.Transport

// ShardDaemon is the worker-daemon half of the TCP transport (what
// cmd/mtworkd wraps): it accepts coordinator connections and runs
// their shards in bounded worker-subprocess slots.
type ShardDaemon = shardnet.Server

// ShardTransportConfig tunes TCPShardTransport (shared-secret auth,
// dial/handshake timeouts, host probe pacing); the zero value works.
type ShardTransportConfig = shardnet.Config

// TCPShardTransport dials mtworkd daemons on the given host:port set
// and runs shards there; output stays byte-identical to a local run.
// A protocol/task-registry/auth mismatch fails the run; unreachable
// or busy hosts degrade to ShardOptions.Spawn, then in-process.
func TCPShardTransport(hosts []string, cfg ShardTransportConfig) (ShardTransport, error) {
	return shardnet.NewTransport(hosts, cfg)
}

// ParseShardHosts resolves a host-list spec — "a:9123,b:9123" or
// "@file" with one host:port per line — for TCPShardTransport.
func ParseShardHosts(spec string) ([]string, error) { return shardnet.ParseHosts(spec) }

// --- Reporting and waveforms ---

// Table is an aligned-ASCII/CSV table.
type Table = report.Table

// Series is a shared-X numeric dataset with table and ASCII-plot
// rendering.
type Series = report.Series

// PWL is a piecewise-linear waveform (switch-level outputs).
type PWL = wave.PWL

// Trace is a sampled waveform (reference-engine outputs).
type Trace = wave.Trace
