// Command mtsize sizes the sleep transistor of a benchmark MTCMOS
// circuit with each of the paper's methodologies and prints the
// comparison: the naive sum-of-widths bound, the static level bound
// (topology only, no simulation), the conservative peak-current size,
// and the delay-target size the switch-level simulator makes
// practical. -estimate restricts the run to one estimator.
//
// Usage:
//
//	mtsize -circuit tree -target 5
//	mtsize -circuit mult -bits 8 -target 5 -bounce 50m
//	mtsize -circuit adder -target 10 -vectors 16 -seed 7
//	mtsize -circuit mult -estimate static-level   # no simulation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mtcmos/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := cli.SizeContext(ctx, os.Args[1:], os.Stdout)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "mtsize:", err)
	}
	os.Exit(cli.ExitCode(err))
}
