// Command mtworkd is the shard worker daemon: it accepts coordinator
// connections (mtexp/mtsim -hosts) and runs their shards on this
// machine, one worker subprocess per session, bounded by -slots.
// It registers the same task set as the coordinators — the handshake
// verifies that by digest, so a stale daemon is refused by name
// instead of failing mid-run.
//
// Usage:
//
//	mtworkd                          # listen on :9123, GOMAXPROCS slots
//	mtworkd -listen :7000 -slots 4
//	mtworkd -auth $SECRET            # require the shared secret
//	mtworkd -version
//
// The daemon holds no state: killing it mid-run is safe (coordinators
// re-queue the dropped shards elsewhere or degrade to local
// execution), and a restarted daemon serves new sessions immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"mtcmos/internal/buildinfo"
	"mtcmos/internal/shard"
	shardnet "mtcmos/internal/shard/net"

	// Registers the shard task set: cli.sweep directly, the
	// experiment grids transitively. Coordinators and this daemon
	// must agree on it — see shard.RegistryDigest.
	_ "mtcmos/internal/cli"
)

func main() {
	if os.Getenv(shard.WorkerEnv) == "1" {
		// Re-executed by our own Server as a worker subprocess: serve
		// the frame protocol on stdio instead of daemonizing.
		if err := shard.ServeWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mtworkd worker:", err)
			os.Exit(1)
		}
		return
	}
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mtworkd", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", ":9123", "address to accept coordinator connections on")
		slots   = fs.Int("slots", runtime.GOMAXPROCS(0), "concurrent worker subprocesses; further attaches are rejected busy")
		auth    = fs.String("auth", os.Getenv("MTWORKD_AUTH"), "shared secret coordinators must present (default $MTWORKD_AUTH)")
		quiet   = fs.Bool("q", false, "suppress per-session log lines")
		version = fs.Bool("version", false, "print build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println(buildinfo.String("mtworkd"))
		return 0
	}

	logger := log.New(os.Stderr, "mtworkd: ", log.LstdFlags)
	s := &shardnet.Server{Slots: *slots, Auth: *auth}
	if !*quiet {
		s.Logf = logger.Printf
	}
	addr, err := s.Listen(*listen)
	if err != nil {
		logger.Print(err)
		return 1
	}
	logger.Printf("%s listening on %s: %d slots, tasks [%s], registry digest %.12s, auth %s",
		buildinfo.String("mtworkd"), addr, *slots,
		strings.Join(shard.Tasks(), " "), shard.RegistryDigest(),
		map[bool]string{true: "required", false: "off"}[*auth != ""])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		s.Close()
	}()

	if err := s.Serve(); err != nil {
		logger.Print(err)
		return 1
	}
	return 0
}
