// Command mtsim simulates one input-vector transition on a benchmark
// MTCMOS circuit (or a netlist deck) and reports delays, virtual-ground
// bounce, and optionally waveforms.
//
// Usage:
//
//	mtsim -circuit tree -wl 8                     # paper Fig. 4 tree
//	mtsim -circuit adder -wl 10 -old 0,0 -new 7,5
//	mtsim -circuit mult -wl 170 -old 00,00 -new ff,81
//	mtsim -circuit tree -wl 8 -engine spice       # reference engine
//	mtsim -netlist deck.sp -tech 0.7 -tstop 10n   # raw deck transient
//	mtsim -circuit tree -wl 8 -trace s3_0 -plot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mtcmos/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := cli.SimContext(ctx, os.Args[1:], os.Stdout)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "mtsim:", err)
	}
	os.Exit(cli.ExitCode(err))
}
