// Command mtlint statically analyzes SPICE-dialect decks before they
// ever reach a simulation engine: connectivity defects (floating
// nodes, missing DC paths, duplicate devices), electrical nonsense
// (zero-width transistors, negative capacitance, off-window
// geometry), and MTCMOS structural mistakes (gated blocks with no
// sleep transistor, low-Vt sleep devices). With -graph it also runs
// the graph-backed rules over the channel-connected-component
// partition: statically always-on VDD->GND paths, outputs missing a
// pull network, and over-deep series stacks / pass-gate chains. Each
// finding carries a stable MTxxx code; the exit status is nonzero
// when any deck has error-severity findings (or warnings, under
// -werror).
//
// Usage:
//
//	mtlint deck.sp                       # lint one deck, text output
//	mtlint -graph deck.sp                # add the MT018+ graph rules
//	mtlint -severity warn a.sp b.sp      # hide info-level findings
//	mtlint -format json deck.sp          # machine-readable output
//	mtlint -format sarif deck.sp         # SARIF 2.1.0 for code hosts
//	mtlint -graph -werror deck.sp        # CI gate: warnings are fatal
//	mtlint -tech 0.3 deck.sp             # 0.3um process window
//	mtlint -rules                        # list every rule
package main

import (
	"fmt"
	"os"

	"mtcmos/internal/cli"
)

func main() {
	if err := cli.Lint(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mtlint:", err)
		os.Exit(1)
	}
}
