// Command mtlint statically analyzes SPICE-dialect decks before they
// ever reach a simulation engine: connectivity defects (floating
// nodes, missing DC paths, duplicate devices), electrical nonsense
// (zero-width transistors, negative capacitance, off-window
// geometry), and MTCMOS structural mistakes (gated blocks with no
// sleep transistor, low-Vt sleep devices). Each finding carries a
// stable MTxxx code; the exit status is nonzero when any deck has
// error-severity findings.
//
// Usage:
//
//	mtlint deck.sp                       # lint one deck, text output
//	mtlint -severity warn a.sp b.sp      # hide info-level findings
//	mtlint -json deck.sp                 # machine-readable output
//	mtlint -tech 0.3 deck.sp             # 0.3um process window
//	mtlint -rules                        # list every rule
package main

import (
	"fmt"
	"os"

	"mtcmos/internal/cli"
)

func main() {
	if err := cli.Lint(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mtlint:", err)
		os.Exit(1)
	}
}
