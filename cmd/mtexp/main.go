// Command mtexp regenerates the tables and figures of the paper's
// evaluation (Kao et al., DAC 1997). Run with no flags to list the
// available experiments; -e all runs everything.
//
// Usage:
//
//	mtexp -e fig10                # one experiment, full fidelity
//	mtexp -e fig7 -fast           # switch-level only (no reference engine)
//	mtexp -e fig14 -spicevectors 100
//	mtexp -e all -fast -plot
//	mtexp -e table1 -csv          # machine-readable output
package main

import (
	"os"

	"mtcmos/internal/cli"
)

func main() {
	if err := cli.Exp(os.Args[1:], os.Stdout); err != nil {
		os.Exit(1)
	}
}
