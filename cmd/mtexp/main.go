// Command mtexp regenerates the tables and figures of the paper's
// evaluation (Kao et al., DAC 1997). Run with no flags to list the
// available experiments; -e all runs everything.
//
// Usage:
//
//	mtexp -e fig10                # one experiment, full fidelity
//	mtexp -e fig7 -fast           # switch-level only (no reference engine)
//	mtexp -e fig14 -spicevectors 100
//	mtexp -e all -fast -plot
//	mtexp -e table1 -csv          # machine-readable output
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"mtcmos/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.ExitCode(cli.ExpContext(ctx, os.Args[1:], os.Stdout)))
}
