// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md section 4),
// plus micro-benchmarks of the two engines. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the same code paths as
// cmd/mtexp; heavyweight reference-engine sweeps run with the
// documented reduced vector budgets (the full-fidelity runs are the
// CLI's job).
package mtcmos_test

import (
	"strings"
	"testing"

	"mtcmos"
)

func runExp(b *testing.B, id string, cfg mtcmos.ExperimentConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := mtcmos.RunExperiment(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Tables)+len(out.Series) == 0 {
			b.Fatal("experiment produced no artifacts")
		}
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkFig5InverterTreeTransients(b *testing.B) {
	runExp(b, "fig5", mtcmos.ExperimentConfig{})
}

// BenchmarkFig7MultiplierVectorSweep runs the Fig. 7 W/L-by-vector grid
// with the default worker pool (one per CPU): `go test -cpu 1,2,4,8`
// sets GOMAXPROCS and therefore the pool size, so the -cpu columns of
// this benchmark ARE the parallel-sweep speedup measurement
// (scripts/bench.sh records them in BENCH_parallel.json).
func BenchmarkFig7MultiplierVectorSweep(b *testing.B) {
	runExp(b, "fig7", mtcmos.ExperimentConfig{})
}

// BenchmarkFig7MultiplierVectorSweepSerial pins Workers to 1: the
// serial baseline the parallel columns are compared against.
func BenchmarkFig7MultiplierVectorSweepSerial(b *testing.B) {
	runExp(b, "fig7", mtcmos.ExperimentConfig{Workers: 1})
}

func BenchmarkTable1DegradationTable(b *testing.B) {
	runExp(b, "table1", mtcmos.ExperimentConfig{})
}

func BenchmarkFig10TreeDelayComparison(b *testing.B) {
	runExp(b, "fig10", mtcmos.ExperimentConfig{})
}

func BenchmarkFig11GroundBounce(b *testing.B) {
	runExp(b, "fig11", mtcmos.ExperimentConfig{})
}

func BenchmarkFig13AdderDelayComparison(b *testing.B) {
	runExp(b, "fig13", mtcmos.ExperimentConfig{})
}

func BenchmarkFig14VectorDegradationSpread(b *testing.B) {
	// 8 reference-engine overlay vectors; the paper plots 800 (hours).
	runExp(b, "fig14", mtcmos.ExperimentConfig{SpiceVectors: 8})
}

func BenchmarkSpeedupExhaustiveAdderVBS(b *testing.B) {
	// The switch-level half of the section 6.2 comparison: all 4096
	// vectors, switch-level only.
	runExp(b, "speedup", mtcmos.ExperimentConfig{Fast: true})
}

func BenchmarkSpeedupExhaustiveAdderSpice(b *testing.B) {
	// Includes the measured-and-extrapolated reference-engine column.
	runExp(b, "speedup", mtcmos.ExperimentConfig{SpiceVectors: 3})
}

func BenchmarkPeakCurrentSizing(b *testing.B) {
	runExp(b, "peak", mtcmos.ExperimentConfig{})
}

func BenchmarkSumOfWidthsSizing(b *testing.B) {
	runExp(b, "widths", mtcmos.ExperimentConfig{})
}

func BenchmarkAblationCx(b *testing.B) {
	runExp(b, "cx", mtcmos.ExperimentConfig{})
}

func BenchmarkAblationReverseConduction(b *testing.B) {
	runExp(b, "reverse", mtcmos.ExperimentConfig{})
}

func BenchmarkAblationBodyEffect(b *testing.B) {
	runExp(b, "body", mtcmos.ExperimentConfig{})
}

// --- Engine micro-benchmarks ---

// BenchmarkVBSAdderVector times one switch-level transition on the
// paper's 3-bit adder: the unit of work the 4096-vector sweep repeats.
func BenchmarkVBSAdderVector(b *testing.B) {
	tech := mtcmos.Tech07()
	ad := mtcmos.RippleCarryAdder(&tech, 3, 20e-15)
	ad.SleepWL = 10
	stim := mtcmos.Stimulus{
		Old:   ad.Inputs(0, 0, false),
		New:   ad.Inputs(7, 5, false),
		TEdge: 1e-9, TRise: 50e-12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtcmos.Simulate(ad.Circuit, stim, mtcmos.SwitchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVBSCompiledAdderVector is BenchmarkVBSAdderVector on a
// compiled circuit: compile once, run many. The allocs/op delta against
// the fresh-compile loop above is the pooled-run-state saving.
func BenchmarkVBSCompiledAdderVector(b *testing.B) {
	tech := mtcmos.Tech07()
	ad := mtcmos.RippleCarryAdder(&tech, 3, 20e-15)
	ad.SleepWL = 10
	cp, err := mtcmos.CompileCircuit(ad.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	stim := mtcmos.Stimulus{
		Old:   ad.Inputs(0, 0, false),
		New:   ad.Inputs(7, 5, false),
		TEdge: 1e-9, TRise: 50e-12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Run(stim, mtcmos.SwitchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateBatchAdder measures the facade batch path: 64
// transitions fanned out over the default worker pool (scales with
// -cpu like the experiment sweeps).
func BenchmarkSimulateBatchAdder(b *testing.B) {
	tech := mtcmos.Tech07()
	ad := mtcmos.RippleCarryAdder(&tech, 3, 20e-15)
	ad.SleepWL = 10
	cp, err := mtcmos.CompileCircuit(ad.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	var stims []mtcmos.Stimulus
	for i := 0; i < 64; i++ {
		stims = append(stims, mtcmos.Stimulus{
			Old:   ad.Inputs(uint64(i)%8, uint64(i)/8, false),
			New:   ad.Inputs(7-uint64(i)%8, uint64(i)/8, false),
			TEdge: 1e-9, TRise: 50e-12,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtcmos.SimulateBatch(cp, stims, mtcmos.BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVBSMultiplier8x8Vector times one switch-level transition on
// the paper's largest circuit (the 8x8 carry-save multiplier, vector A).
func BenchmarkVBSMultiplier8x8Vector(b *testing.B) {
	tech := mtcmos.Tech03()
	m := mtcmos.CarrySaveMultiplier(&tech, 8, 15e-15)
	m.SleepWL = 170
	stim := mtcmos.Stimulus{
		Old:   m.Inputs(0, 0),
		New:   m.Inputs(0xFF, 0x81),
		TEdge: 1e-9, TRise: 50e-12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtcmos.Simulate(m.Circuit, stim, mtcmos.SwitchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpiceMTCMOSInverter times the reference engine on a single
// MTCMOS inverter transition (its unit of work).
func BenchmarkSpiceMTCMOSInverter(b *testing.B) {
	tech := mtcmos.Tech07()
	c := mtcmos.InverterChain(&tech, 1, 50e-15)
	c.SleepWL = 10
	stim := mtcmos.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 0.5e-9, TRise: 50e-12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtcmos.SimulateSpice(c, stim, mtcmos.SpiceOptions{
			Options: mtcmos.EngineOptions{TStop: 5e-9},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpiceAdderVector times one reference-engine transient on the
// 3-bit adder: the per-vector cost behind the paper's 4.78-hour sweep.
func BenchmarkSpiceAdderVector(b *testing.B) {
	tech := mtcmos.Tech07()
	ad := mtcmos.RippleCarryAdder(&tech, 3, 20e-15)
	ad.SleepWL = 10
	stim := mtcmos.Stimulus{
		Old:   ad.Inputs(0, 0, false),
		New:   ad.Inputs(7, 5, false),
		TEdge: 1e-9, TRise: 50e-12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtcmos.SimulateSpice(ad.Circuit, stim, mtcmos.SpiceOptions{
			Options: mtcmos.EngineOptions{TStop: 15e-9},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetlistExpandParse times circuit expansion to the SPICE
// dialect plus a parse round trip (the netlist substrate).
func BenchmarkNetlistExpandParse(b *testing.B) {
	tech := mtcmos.Tech07()
	ad := mtcmos.RippleCarryAdder(&tech, 3, 20e-15)
	ad.SleepWL = 10
	stim := mtcmos.Stimulus{
		Old:   ad.Inputs(0, 0, false),
		New:   ad.Inputs(7, 5, false),
		TEdge: 1e-9, TRise: 50e-12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl, err := ad.Circuit.Netlist(stim)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mtcmos.ParseNetlist(strings.NewReader(nl.String())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchicalSizing times the DAC'98-extension analysis:
// activity recording, overlap detection, grouping and sizing.
func BenchmarkHierarchicalSizing(b *testing.B) {
	runExp(b, "hier", mtcmos.ExperimentConfig{})
}

// BenchmarkAccuracyRefinements times the section 5.3 extension study
// (switch-level only).
func BenchmarkAccuracyRefinements(b *testing.B) {
	runExp(b, "accuracy", mtcmos.ExperimentConfig{Fast: true})
}

// BenchmarkStandbyDC times the reference-engine DC standby analysis.
func BenchmarkStandbyDC(b *testing.B) {
	runExp(b, "standby", mtcmos.ExperimentConfig{})
}

// BenchmarkVectorScreening times the screening-comparison experiment.
func BenchmarkVectorScreening(b *testing.B) {
	runExp(b, "screen", mtcmos.ExperimentConfig{})
}

// --- Static circuit analysis micro-benchmarks ---

// BenchmarkCCCPartition times the full graph analysis (rail
// classification, union-find partition, DC-path enumeration) over the
// expanded 8x8-multiplier deck — the baseline for later
// graph-algorithm work.
func BenchmarkCCCPartition(b *testing.B) {
	tech := mtcmos.Tech03()
	m := mtcmos.CarrySaveMultiplier(&tech, 8, 15e-15)
	m.SleepWL = 170
	stim := mtcmos.Stimulus{
		Old:   m.Inputs(0, 0),
		New:   m.Inputs(0xFF, 0x81),
		TEdge: 1e-9, TRise: 50e-12,
	}
	nl, err := m.Circuit.Netlist(stim)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := mtcmos.AnalyzeGraph(nl, mtcmos.GraphConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if a.Stats().Components == 0 {
			b.Fatal("partition found no components")
		}
	}
}

// BenchmarkLevelization times the gate-IR levelization and static
// level bound on the 8x8 multiplier.
func BenchmarkLevelization(b *testing.B) {
	tech := mtcmos.Tech03()
	m := mtcmos.CarrySaveMultiplier(&tech, 8, 15e-15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound, err := mtcmos.StaticLevelBound(m.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		if bound <= 0 {
			b.Fatal("no bound")
		}
	}
}

// BenchmarkSCAExperiment times the sca experiment end to end (4x4
// multiplier scale).
func BenchmarkSCAExperiment(b *testing.B) {
	runExp(b, "sca", mtcmos.ExperimentConfig{Fast: true, MultiplierBits: 4})
}
