// Invtree walks through the paper's inverter-tree experiments (Fig. 4,
// 5, 10, 11): it cross-checks the fast switch-level simulator against
// the transistor-level reference engine on the same circuit, printing
// the delay-vs-W/L comparison and the virtual-ground bounce waveforms.
//
// This example runs the reference engine, so it takes a few seconds;
// see examples/quickstart for the instant version.
package main

import (
	"fmt"
	"log"

	"mtcmos"
)

func main() {
	tech := mtcmos.Tech07()
	stim := mtcmos.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 1e-9, TRise: 50e-12,
	}
	outs := []string{"s3_0", "s3_1", "s3_2", "s3_3", "s3_4", "s3_5", "s3_6", "s3_7", "s3_8"}

	// Fig. 10: delay vs W/L from both engines.
	cmp := &mtcmos.Series{
		Title:   "Inverter-tree delay vs sleep W/L (Fig. 10)",
		XLabel:  "W/L",
		YLabels: []string{"switch-level ns", "reference ns"},
	}
	for _, wl := range []float64{2, 5, 8, 11, 14, 17, 20} {
		tree := mtcmos.InverterTree(&tech, 3, 3, 50e-15)
		tree.SleepWL = wl

		fast, err := mtcmos.Simulate(tree, stim, mtcmos.SwitchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		dFast, _, _ := fast.MaxDelay(outs)

		// The detailed engine shows more slowdown at extreme bounce
		// than the first-order switch-level model, so give it room.
		ref, err := mtcmos.SimulateSpice(tree, stim, mtcmos.SpiceOptions{
			Options: mtcmos.EngineOptions{TStop: stim.TEdge + 6*dFast + 5e-9},
		})
		if err != nil {
			log.Fatal(err)
		}
		dRef, _, err := ref.MaxDelay(outs)
		if err != nil {
			log.Fatal(err)
		}
		cmp.Add(wl, dFast*1e9, dRef*1e9)
	}
	fmt.Println(cmp.String())
	fmt.Println(cmp.Plot(64, 14))

	// Fig. 11: the bounce waveform — stepwise from the switch-level
	// tool, smooth from the reference engine.
	tree := mtcmos.InverterTree(&tech, 3, 3, 50e-15)
	tree.SleepWL = 8
	fast, err := mtcmos.Simulate(tree, stim, mtcmos.SwitchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := mtcmos.SimulateSpice(tree, stim, mtcmos.SpiceOptions{
		Options: mtcmos.EngineOptions{TStop: 12e-9, SampleDT: 50e-12},
	})
	if err != nil {
		log.Fatal(err)
	}
	vg := &mtcmos.Series{
		Title:   "Virtual-ground bounce at W/L=8 (Fig. 11)",
		XLabel:  "t_ns",
		YLabels: []string{"switch-level Vx", "reference Vx"},
	}
	refVg := ref.VGndTrace()
	for i := 0; i <= 60; i++ {
		t := 12e-9 * float64(i) / 60
		vg.Add(t*1e9, fast.VGnd.At(t), refVg.At(t))
	}
	fmt.Println(vg.Plot(64, 14))
	fmt.Printf("peak bounce: switch-level %.0f mV, reference %.0f mV\n",
		fast.PeakVx*1e3, peakOf(refVg)*1e3)
}

func peakOf(tr *mtcmos.Trace) float64 {
	v, _ := tr.Peak(0, 1)
	return v
}
