// Quickstart: build the paper's MTCMOS inverter tree (Fig. 4), watch
// the sleep transistor slow it down, and size the device for a 5%
// speed budget — the complete workflow of the DAC'97 paper in one
// small program.
package main

import (
	"fmt"
	"log"

	"mtcmos"
)

func main() {
	// 1. The technology: the paper's 0.7um node (Vdd=1.2V, low Vt
	//    +-0.35V, high sleep Vt 0.75V).
	tech := mtcmos.Tech07()

	// 2. The circuit: a 1-3-9 inverter tree with 50fF leaf loads,
	//    gated by one NMOS sleep transistor (paper Fig. 4).
	tree := mtcmos.InverterTree(&tech, 3, 3, 50e-15)

	// 3. The stimulus: the paper's 0->1 input transition, which makes
	//    all nine third-stage inverters discharge simultaneously
	//    through the sleep device.
	stim := mtcmos.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 1e-9, TRise: 50e-12,
	}

	// 3b. Lint before simulating: the same static analysis mtsim and
	//     mtsize apply (and cmd/mtlint exposes for raw decks) catches
	//     floating nodes, missing sleep transistors or bad vectors as
	//     MTxxx diagnostics instead of cryptic engine failures.
	diags := append(mtcmos.Lint(nil, tree, &tech), mtcmos.LintVectors(tree, stim.Old, stim.New)...)
	if mtcmos.LintHasErrors(diags) {
		for _, d := range diags {
			fmt.Println("lint:", d)
		}
		log.Fatal("circuit failed the pre-simulation lint")
	}
	fmt.Printf("lint: clean (%d rules)\n\n", len(mtcmos.LintRules()))

	// 4. Sweep the sleep size with the variable-breakpoint switch-level
	//    simulator: each run costs microseconds, not SPICE minutes.
	fmt.Println("sleep W/L    worst delay    virtual-ground bounce")
	for _, wl := range []float64{0, 20, 14, 11, 8, 5, 2} {
		tree.SleepWL = wl
		res, err := mtcmos.Simulate(tree, stim, mtcmos.SwitchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		d, net, _ := res.MaxDelay([]string{"s3_0", "s3_1", "s3_2", "s3_3", "s3_4", "s3_5", "s3_6", "s3_7", "s3_8"})
		label := fmt.Sprintf("W/L=%g", wl)
		if wl == 0 {
			label = "CMOS"
		}
		fmt.Printf("%-9s    %6.3f ns (%s)   %5.1f mV\n", label, d*1e9, net, res.PeakVx*1e3)
	}

	// 5. Size it: the smallest device that keeps the worst-case
	//    penalty under 5% for both input edges.
	trs := []mtcmos.Transition{
		{Old: map[string]bool{"in": false}, New: map[string]bool{"in": true}, Label: "0->1"},
		{Old: map[string]bool{"in": true}, New: map[string]bool{"in": false}, Label: "1->0"},
	}
	sz, err := mtcmos.SizeForDelayTarget(tree, mtcmos.SizingConfig{}, trs, 0.05, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsized for <=5%% penalty: W/L = %.1f (measured %.2f%%, %d simulations)\n",
		sz.WL, sz.Degradation*100, sz.Evals)

	// 6. What the gating buys: leakage reduction and its energy cost.
	tree.SleepWL = sz.WL
	ps, err := mtcmos.AnalyzePower(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sleep-mode leakage: %.3g nA vs %.3g nA ungated (%.0fx reduction)\n",
		ps.LeakageMTCMOS*1e9, ps.LeakageCMOS*1e9, ps.LeakageReduction)
	fmt.Printf("sleep-transistor switching energy: %.3g fJ; break-even idle: %.3g us\n",
		ps.SleepSwitchEnergy*1e15, ps.BreakEvenIdle*1e6)
}
