// Hierarchy demonstrates the toolkit's extensions beyond the DAC'97
// paper: hierarchical sleep-transistor sizing via mutually exclusive
// discharge patterns (the authors' DAC'98 follow-up) and the standby
// leakage analysis that quantifies what the sleep device buys.
package main

import (
	"fmt"
	"log"
	"strings"

	"mtcmos"
)

func main() {
	tech := mtcmos.Tech07()

	// --- Part 1: hierarchical sizing on a pipeline-like chain ---
	// A 12-stage inverter chain discharges strictly one gate at a time,
	// so blocks partitioned by depth never discharge together: they can
	// share one sleep device sized for the worst single block instead
	// of one per block.
	chain := mtcmos.InverterChain(&tech, 12, 20e-15)
	blocks, err := mtcmos.PartitionByLevel(chain, 6)
	if err != nil {
		log.Fatal(err)
	}
	trs := []mtcmos.HierarchyTransition{
		{Old: map[string]bool{"in": false}, New: map[string]bool{"in": true}, Label: "0->1"},
		{Old: map[string]bool{"in": true}, New: map[string]bool{"in": false}, Label: "1->0"},
	}
	cfg := mtcmos.HierarchyConfig{Blocks: blocks, MaxBounce: 0.05}
	plan, err := mtcmos.AnalyzeHierarchy(chain, cfg, trs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inverter chain x12, %d blocks by depth:\n", len(blocks))
	fmt.Printf("  per-block devices: total W/L = %.0f\n", plan.PerBlockWL)
	fmt.Printf("  mutual-exclusion groups: %d -> total W/L = %.0f (%.1fx saving)\n",
		len(plan.Groups), plan.TotalWL, plan.PerBlockWL/plan.TotalWL)

	// Apply the plan (configures multi-domain sleep rails) and verify
	// the circuit still computes.
	if err := mtcmos.ApplyHierarchy(chain, cfg, plan); err != nil {
		log.Fatal(err)
	}
	res, err := mtcmos.Simulate(chain, mtcmos.Stimulus{
		Old:   map[string]bool{"in": false},
		New:   map[string]bool{"in": true},
		TEdge: 1e-9, TRise: 50e-12,
	}, mtcmos.SwitchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	d, _ := res.Delay("out")
	fmt.Printf("  multi-domain verification: out settles correctly, delay %.3f ns\n\n", d*1e9)

	// --- Part 2: per-FA partition of an adder ---
	// The adder's full adders all see their operand bits flip at the
	// same instant, so the blocks overlap and honest analysis refuses
	// to merge them — no false savings.
	ad := mtcmos.RippleCarryAdder(&tech, 4, 20e-15)
	adBlocks := mtcmos.PartitionByPrefix(ad.Circuit, func(name string) string {
		return strings.SplitN(name, "_", 2)[0]
	})
	mask := uint64(15)
	adTrs := []mtcmos.HierarchyTransition{
		{Old: ad.Inputs(0, 0, false), New: ad.Inputs(mask, 1, false), Label: "ripple"},
		{Old: ad.Inputs(0, 0, false), New: ad.Inputs(mask, mask, false), Label: "all-on"},
	}
	adCfg := mtcmos.HierarchyConfig{Blocks: adBlocks, MaxBounce: 0.05}
	adPlan, err := mtcmos.AnalyzeHierarchy(ad.Circuit, adCfg, adTrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-bit adder, per-FA blocks: %d blocks -> %d groups (overlapping discharge: honest analysis declines to merge)\n\n",
		len(adBlocks), len(adPlan.Groups))

	// --- Part 3: what the sleep device buys — standby DC analysis ---
	ad3 := mtcmos.RippleCarryAdder(&tech, 2, 20e-15)
	ad3.SleepWL = 20
	sb, err := mtcmos.Standby(ad3.Circuit, ad3.Inputs(3, 0, false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby DC analysis (2-bit adder, sleep W/L=20):\n")
	fmt.Printf("  virtual ground floats to %.3f V (self-reverse-bias)\n", sb.VGndFloat)
	fmt.Printf("  leakage: %.3g nA active -> %.3g fA standby (%.0fx reduction)\n",
		sb.Active*1e9, sb.Standby*1e15, sb.Reduction)
}
