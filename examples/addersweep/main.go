// Addersweep reproduces the paper's exhaustive 3-bit adder study
// (Fig. 12/13/14 and section 6.2): all 4096 input-vector transitions
// simulated with the switch-level tool in well under a second — the
// sweep the authors report taking 4.78 CPU-hours of SPICE — followed
// by the degradation histogram that motivates vector-aware sizing.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"mtcmos"
)

func main() {
	const bits = 3
	const wl = 10.0
	tech := mtcmos.Tech07()
	ad := mtcmos.RippleCarryAdder(&tech, bits, 20e-15)
	fmt.Printf("%d-bit mirror ripple adder: %d transistors (paper: 3x28)\n",
		bits, ad.Stats().Transistors)

	outs := []string{"s0", "s1", "s2", "cout"}
	space, err := mtcmos.NewVectorSpace(append(mtcmos.BitNames("a", bits), mtcmos.BitNames("b", bits)...)...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive sweep: %d ordered vector pairs\n\n", space.PairCount())

	half := uint64(1) << bits
	run := func(sleepWL float64) (map[[2]uint64]float64, time.Duration) {
		ad.SleepWL = sleepWL
		delays := map[[2]uint64]float64{}
		start := time.Now()
		for o := uint64(0); o < space.Size(); o++ {
			for w := uint64(0); w < space.Size(); w++ {
				stim := mtcmos.Stimulus{
					Old:   ad.Inputs(o%half, o/half, false),
					New:   ad.Inputs(w%half, w/half, false),
					TEdge: 1e-9, TRise: 50e-12,
				}
				res, err := mtcmos.Simulate(ad.Circuit, stim, mtcmos.SwitchOptions{})
				if err != nil {
					log.Fatal(err)
				}
				if d, _, ok := res.MaxDelay(outs); ok {
					delays[[2]uint64{o, w}] = d
				}
			}
		}
		return delays, time.Since(start)
	}

	base, tBase := run(0)
	mt, tMT := run(wl)
	total := tBase + tMT
	fmt.Printf("switch-level: 2 x 4096 simulations in %s (%.1f us/vector)\n",
		total.Round(time.Millisecond), total.Seconds()*1e6/8192)
	fmt.Printf("(the paper reports 13.5s for its tool and 4.78 CPU-hours for SPICE on this sweep)\n\n")

	// Degradation distribution at W/L=10 (Fig. 14's data).
	var degs []float64
	worst, worstKey := 0.0, [2]uint64{}
	for k, d0 := range base {
		d1, ok := mt[k]
		if !ok || d0 <= 0 {
			continue
		}
		deg := 100 * (d1 - d0) / d0
		degs = append(degs, deg)
		if deg > worst {
			worst, worstKey = deg, k
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(degs)))
	fmt.Printf("degradation due to MTCMOS at W/L=%g over %d toggling transitions:\n", wl, len(degs))
	fmt.Printf("  worst %.1f%%  median %.1f%%  p90 %.1f%%\n",
		degs[0], degs[len(degs)/2], degs[len(degs)/10])
	oa, ob := worstKey[0]%half, worstKey[0]/half
	na, nb := worstKey[1]%half, worstKey[1]/half
	fmt.Printf("  worst transition: (a=%d,b=%d) -> (a=%d,b=%d)\n\n", oa, ob, na, nb)

	// Histogram.
	buckets := make([]int, 10)
	width := degs[0]/float64(len(buckets)) + 1e-9
	for _, d := range degs {
		b := int(d / width)
		if b >= len(buckets) {
			b = len(buckets) - 1
		}
		if b < 0 {
			b = 0
		}
		buckets[b]++
	}
	fmt.Println("histogram (the long tail is why worst-vector identification matters):")
	for i, n := range buckets {
		bar := ""
		for j := 0; j < n/8+1 && n > 0; j++ {
			bar += "#"
		}
		fmt.Printf("  %5.1f-%5.1f%%  %4d  %s\n", float64(i)*width, float64(i+1)*width, n, bar)
	}
}
