MTCMOS inverter: low-Vt logic over a high-Vt sleep transistor
* The canonical structure from the paper's Fig. 1: the pulldown of a
* low-Vt inverter lands on a virtual-ground rail that an ON high-Vt
* NMOS sleep transistor ties to real ground. Lints clean, including
* under mtlint -graph.
.subckt inv in out vdd vgnd
  Mp out in vdd vdd pmos W=2.8u L=0.7u
  Mn out in vgnd 0 nmos W=1.4u L=0.7u
.ends
Vdd vdd 0 DC 1.2
Vin in 0 PWL(0 0 1n 0 1.05n 1.2)
Vslp sleepen 0 DC 1.2
Xinv1 in out vdd vg inv
Msleep vg sleepen 0 0 nmos_hvt W=9.8u L=0.7u
Cl out 0 50f
.end
