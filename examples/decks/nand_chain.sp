Two-stage NAND chain on a shared virtual-ground rail
* A gated two-gate block: both pulldown stacks share one virtual
* ground behind a single high-Vt sleep device. Exercises the CCC
* partition (each gate output is its own channel-connected component)
* and the series-stack depth accounting of mtlint -graph. The sleep
* device is sized at 3.5x the SAT-refined exclusion bound (the two
* stages provably never discharge together), under MT024's oversize
* threshold.
.subckt nand2 a b out vdd vgnd
  Mpa out a vdd vdd pmos W=2.8u L=0.7u
  Mpb out b vdd vdd pmos W=2.8u L=0.7u
  Mna out a mid 0 nmos W=2.8u L=0.7u
  Mnb mid b vgnd 0 nmos W=2.8u L=0.7u
.ends
Vdd vdd 0 DC 1.2
Va a 0 PWL(0 0 1n 0 1.05n 1.2)
Vb b 0 DC 1.2
Vslp sleepen 0 DC 1.2
Xn1 a b n1 vdd vg nand2
Xn2 n1 b out vdd vg nand2
Msleep vg sleepen 0 0 nmos_hvt W=9.8u L=0.7u
Cl out 0 30f
.end
