Decoded-select branches on a shared virtual-ground rail
* Two data branches enabled by complementary selects behind one
* high-Vt sleep device: branch A's NAND pulls down only while sel
* is low, branch B's only while sel is high, so the two branches
* provably never discharge in the same cycle. mtlint -prove's
* exclusion refinement (DESIGN.md §11) proves oa x ob (and ns x oa)
* mutually exclusive, tightening the naive discharge sum 10 to the
* refined bound 6. The sleep device (W/L = 10) sits under MT024's
* oversize threshold over that refined bound.
.subckt nand2 a b out vdd vgnd
  Mpa out a vdd vdd pmos W=2.8u L=0.7u
  Mpb out b vdd vdd pmos W=2.8u L=0.7u
  Mna out a mid 0 nmos W=2.8u L=0.7u
  Mnb mid b vgnd 0 nmos W=2.8u L=0.7u
.ends
Vdd vdd 0 DC 1.2
Vsel sel 0 PWL(0 0 1n 0 1.05n 1.2)
Va a 0 DC 1.2
Vb b 0 DC 1.2
Vslp sleepen 0 DC 1.2
* shared select inverter, on the same gated rail
Mpn ns sel vdd vdd pmos W=2.8u L=0.7u
Mnn ns sel vg 0 nmos W=1.4u L=0.7u
* branch A: enabled while sel is low (via ns)
Xa a ns oa vdd vg nand2
* branch B: enabled while sel is high
Xb b sel ob vdd vg nand2
Msleep vg sleepen 0 0 nmos_hvt W=7u L=0.7u
Coa oa 0 20f
Cob ob 0 20f
.end
