proven-driven node: a static false positive the prover suppresses
* The output "out" has no pull-up network, so the static graph rules
* (mtlint -graph) warn MT019 that it may float. But its two pulldowns
* are gated by a and by nota = NOT(a): one of them always conducts,
* so the floating state is unsatisfiable. mtlint -prove refutes it
* and suppresses the warning (-verbose shows the refutation core).
Vdd vdd 0 DC 1.2
Va a 0 PWL(0 0 1n 0 1.05n 1.2)
Mpinv nota a vdd vdd pmos W=2.8u L=0.7u
Mninv nota a 0 0 nmos W=1.4u L=0.7u
Mn1 out a 0 0 nmos W=1.4u L=0.7u
Mn2 out nota 0 0 nmos W=1.4u L=0.7u
Cout out 0 20f
.end
