// Multiplier reproduces the paper's input-vector dependency study on
// the 8x8 carry-save multiplier (Fig. 6/7, Table 1, section 4): two
// transitions with identical CMOS delay degrade very differently under
// MTCMOS, so sizing by the wrong vector under-sizes the sleep device.
// It finishes with the greedy worst-vector search the fast simulator
// makes affordable.
package main

import (
	"fmt"
	"log"

	"mtcmos"
)

func main() {
	const n = 8
	tech := mtcmos.Tech03() // the paper's 0.3um node: Vdd=1.0V
	m := mtcmos.CarrySaveMultiplier(&tech, n, 15e-15)
	st := m.Stats()
	fmt.Printf("%dx%d carry-save multiplier: %d gates, %d transistors\n\n",
		n, n, st.Gates, st.Transistors)

	// The paper's two vectors.
	stimA := mtcmos.Stimulus{ // large simultaneous currents
		Old: m.Inputs(0x00, 0x00), New: m.Inputs(0xFF, 0x81),
		TEdge: 1e-9, TRise: 50e-12,
	}
	stimB := mtcmos.Stimulus{ // rippling, small currents
		Old: m.Inputs(0x7F, 0x81), New: m.Inputs(0xFF, 0x81),
		TEdge: 1e-9, TRise: 50e-12,
	}

	delay := func(stim mtcmos.Stimulus) float64 {
		res, err := mtcmos.Simulate(m.Circuit, stim, mtcmos.SwitchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		d, _, ok := res.MaxDelay(m.ProductNets)
		if !ok {
			log.Fatal("no product bit toggled")
		}
		return d
	}

	m.SleepWL = 0
	baseA, baseB := delay(stimA), delay(stimB)
	fmt.Printf("CMOS baselines: A=%.3f ns, B=%.3f ns (similar, as the paper notes)\n\n", baseA*1e9, baseB*1e9)

	// Fig. 7: delay vs W/L per vector.
	s := &mtcmos.Series{
		Title:   "Delay degradation vs sleep W/L (Fig. 7 / Table 1)",
		XLabel:  "W/L",
		YLabels: []string{"A %", "B %"},
	}
	for _, wl := range []float64{20, 40, 60, 90, 130, 170, 230, 300, 400, 500} {
		m.SleepWL = wl
		dA, dB := delay(stimA), delay(stimB)
		s.Add(wl, 100*(dA-baseA)/baseA, 100*(dB-baseB)/baseB)
	}
	fmt.Println(s.String())
	fmt.Println(s.Plot(64, 14))

	// Table 1's trap: size for 5% using only vector B, then measure A.
	trA := mtcmos.Transition{Old: stimA.Old, New: stimA.New, Label: "A"}
	trB := mtcmos.Transition{Old: stimB.Old, New: stimB.New, Label: "B"}
	cfg := mtcmos.SizingConfig{Outputs: m.ProductNets}
	hi := 64 * mtcmos.SumOfWidths(m.Circuit)

	szB, err := mtcmos.SizeForDelayTarget(m.Circuit, cfg, []mtcmos.Transition{trB}, 0.05, hi)
	if err != nil {
		log.Fatal(err)
	}
	szA, err := mtcmos.SizeForDelayTarget(m.Circuit, cfg, []mtcmos.Transition{trA}, 0.05, hi)
	if err != nil {
		log.Fatal(err)
	}
	trap, err := mtcmos.Degradation(m.Circuit, cfg, []mtcmos.Transition{trA}, szB.WL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5%% sizing by vector B alone: W/L=%.0f\n", szB.WL)
	fmt.Printf("5%% sizing by vector A:       W/L=%.0f\n", szA.WL)
	fmt.Printf("the trap: a B-sized device degrades vector A by %.1f%% (paper: 18.1%%)\n\n", trap*100)

	// Section 4: the peak-current method is ~3x conservative.
	pk, err := mtcmos.SizeForPeakCurrent(m.Circuit, cfg, []mtcmos.Transition{trA}, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak-current sizing: Ipeak=%.3f mA -> W/L=%.0f (%.1fx the delay-target size)\n\n",
		pk.Ipeak*1e3, pk.WL, pk.WL/szA.WL)

	// Extension: greedy search for bad vectors without exhaustive
	// enumeration (2^32 pairs would be unthinkable even for this tool).
	fmt.Println("greedy worst-vector search at W/L=170 (4x4 submultiplier for brevity):")
	small := mtcmos.CarrySaveMultiplier(&tech, 4, 15e-15)
	worst, err := searchWorst(small, 170)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  found (x:%x,y:%x)->(x:%x,y:%x) with %.1f%% degradation\n",
		worst.ox, worst.oy, worst.nx, worst.ny, worst.deg*100)
}

type worstVec struct {
	ox, oy, nx, ny uint64
	deg            float64
}

func searchWorst(m *mtcmos.Multiplier, wl float64) (worstVec, error) {
	space, err := mtcmos.NewVectorSpace(append(mtcmos.BitNames("x", m.N), mtcmos.BitNames("y", m.N)...)...)
	if err != nil {
		return worstVec{}, err
	}
	half := uint64(1) << uint(m.N)
	cfg := mtcmos.SizingConfig{Outputs: m.ProductNets}
	metric := func(o, w uint64) float64 {
		tr := mtcmos.Transition{
			Old: m.Inputs(o%half, o/half),
			New: m.Inputs(w%half, w/half),
		}
		deg, err := mtcmos.Degradation(m.Circuit, cfg, []mtcmos.Transition{tr}, wl)
		if err != nil {
			return -1
		}
		return deg
	}
	best := space.GreedySearch(1, 3, metric)
	return worstVec{
		ox: best.OldV % half, oy: best.OldV / half,
		nx: best.NewV % half, ny: best.NewV / half,
		deg: best.Metric,
	}, nil
}
